"""Per-shard exactly-once evaluation ledger for the sweep fabric.

The PR 5 checkpoint journal (:mod:`repro.resilience.checkpoint`) is one
append-only file per search.  Under the sweep fabric a sweep's charged
evaluations arrive from many worker slots, and a single shared file
would make the journal a serialization point again.  A
:class:`ShardedJournal` keeps the same wire format — a directory of
ordinary ``c2bound.checkpoint/1`` journals, one per ledger shard::

    <dir>/shard-0000.jsonl
    <dir>/shard-0001.jsonl
    ...

Every canonical configuration key routes to exactly one shard
(:func:`shard_of_canonical_key` — a content hash over the journal wire
encoding, so the mapping is identical across processes, platforms and
runs).  That gives the exactly-once property a *local* form: a charged
evaluation appears on exactly one shard file, duplicates are impossible
by construction, and a crash can tear at most the final line of each
shard (healed independently on resume by the underlying journal's
torn-tail logic).

:meth:`ShardedJournal.open_resume` restores the union of all shard
ledgers; :class:`~repro.dse.evaluate.BudgetedEvaluator` replays them
through its existing warm-cache machinery, so a sweep that lost workers
mid-flight resumes bit-identically — costs *and* ``dse.evaluations``.

Shard files remain individually valid journals:
:func:`~repro.resilience.checkpoint.load_journal` reads any one of
them, and manifest lineage picks their headers up like any other
checkpoint.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import CheckpointError
from repro.resilience.checkpoint import (
    CheckpointJournal,
    _encode_key,
    new_run_id,
)

__all__ = ["DEFAULT_LEDGER_SHARDS", "ShardedJournal",
           "shard_of_canonical_key"]

#: Default ledger fan-out.  Sixteen files keep per-shard append streams
#: short without turning a checkpoint directory into directory spam; the
#: count is recorded in every shard header and validated on resume.
DEFAULT_LEDGER_SHARDS = 16


def shard_of_canonical_key(key: tuple,
                           shard_count: int = DEFAULT_LEDGER_SHARDS) -> int:
    """Stable ledger shard of a canonical configuration key.

    Hashes the checkpoint *wire encoding* of the key (floats exact via
    ``repr``) so the key→shard mapping survives pickling, process
    boundaries and resumes — the same bytes that would appear in the
    journal decide where they go.
    """
    payload = json.dumps(_encode_key(key), separators=(",", ":"))
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:4], "big") % shard_count


def _shard_name(shard: int) -> str:
    return f"shard-{shard:04x}.jsonl"


class ShardedJournal:
    """A directory of per-shard checkpoint journals with one ledger API.

    Mirrors the :class:`~repro.resilience.checkpoint.CheckpointJournal`
    writing surface (``append_eval`` / ``append_evals`` / ``close``), so
    a :class:`~repro.dse.evaluate.BudgetedEvaluator` accepts it as its
    ``checkpoint=`` without knowing about shards.  Construct through
    :meth:`create` or :meth:`open_resume`.
    """

    def __init__(self, directory: "str | Path", *,
                 method: "str | None" = None,
                 run_id: "str | None" = None,
                 shard_count: int = DEFAULT_LEDGER_SHARDS) -> None:
        if shard_count < 1:
            raise CheckpointError(
                f"ledger shard count must be >= 1, got {shard_count}")
        self.directory = Path(directory)
        self.method = method
        self.run_id = run_id if run_id is not None else new_run_id()
        self.shard_count = int(shard_count)
        self._journals: "dict[int, CheckpointJournal]" = {}

    # ---- constructors -----------------------------------------------------

    @classmethod
    def create(cls, directory: "str | Path", *,
               method: "str | None" = None, run_id: "str | None" = None,
               shard_count: int = DEFAULT_LEDGER_SHARDS) -> "ShardedJournal":
        """Start a fresh ledger (removing any existing shard files)."""
        ledger = cls(directory, method=method, run_id=run_id,
                     shard_count=shard_count)
        ledger.directory.mkdir(parents=True, exist_ok=True)
        for stale in ledger.directory.glob("shard-*.jsonl"):
            stale.unlink()
        return ledger

    @classmethod
    def open_resume(cls, directory: "str | Path", *,
                    method: "str | None" = None,
                    run_id: "str | None" = None,
                    shard_count: "int | None" = None,
                    ) -> "tuple[ShardedJournal, list[tuple[tuple, float]]]":
        """Reopen a ledger directory, restoring every shard's evals.

        Returns ``(ledger, evals)`` — the union of all shard ledgers in
        shard order (restore order is irrelevant: the budget replay
        warms a cache keyed by configuration).  Each shard file heals
        its own torn tail.  A missing or empty directory degenerates to
        :meth:`create`.  ``shard_count=None`` adopts the count recorded
        in the shard headers; an explicit mismatching count raises.
        """
        directory = Path(directory)
        paths = sorted(directory.glob("shard-*.jsonl")) \
            if directory.is_dir() else []
        if not paths:
            count = (DEFAULT_LEDGER_SHARDS if shard_count is None
                     else shard_count)
            return cls.create(directory, method=method, run_id=run_id,
                              shard_count=count), []
        ledger = cls(directory, method=method, run_id=run_id, shard_count=1)
        evals: "list[tuple[tuple, float]]" = []
        recorded: "set[int]" = set()
        for path in paths:
            shard = int(path.stem.split("-", 1)[1], 16)
            journal, shard_evals, _states = CheckpointJournal.open_resume(
                path, method=method)
            meta = journal.header.get("meta") or {}
            if "shard_count" in meta:
                recorded.add(int(meta["shard_count"]))
            ledger._journals[shard] = journal
            evals.extend(shard_evals)
        if len(recorded) > 1:
            raise CheckpointError(
                f"ledger {directory} mixes shard counts {sorted(recorded)}")
        count = recorded.pop() if recorded else (
            DEFAULT_LEDGER_SHARDS if shard_count is None else shard_count)
        if shard_count is not None and shard_count != count:
            raise CheckpointError(
                f"ledger {directory} was written with {count} shards, "
                f"asked to resume with {shard_count}")
        ledger.shard_count = count
        return ledger, evals

    # ---- writing ----------------------------------------------------------

    def shard_of(self, key: tuple) -> int:
        """The ledger shard a canonical key routes to."""
        return shard_of_canonical_key(key, self.shard_count)

    def _journal_for(self, shard: int) -> CheckpointJournal:
        journal = self._journals.get(shard)
        if journal is None:
            path = self.directory / _shard_name(shard)
            if path.exists():
                journal, _evals, _states = CheckpointJournal.open_resume(
                    path, method=self.method)
            else:
                self.directory.mkdir(parents=True, exist_ok=True)
                journal = CheckpointJournal.create(
                    path, method=self.method, run_id=self.run_id,
                    meta={"shard": shard, "shard_count": self.shard_count})
            self._journals[shard] = journal
        return journal

    def append_eval(self, key: tuple, cost: float) -> None:
        """Ledger one charged evaluation on its owning shard."""
        self._journal_for(self.shard_of(key)).append_eval(key, cost)

    def append_evals(self, entries: "list[tuple[tuple, float]]") -> None:
        """Ledger a batch — grouped by shard, one flush per shard touched."""
        if not entries:
            return
        by_shard: "dict[int, list[tuple[tuple, float]]]" = {}
        for key, cost in entries:
            by_shard.setdefault(self.shard_of(key), []).append((key, cost))
        for shard in sorted(by_shard):
            self._journal_for(shard).append_evals(by_shard[shard])

    def paths(self) -> "list[Path]":
        """Existing shard files, sorted (for lineage / auditing)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("shard-*.jsonl"))

    def close(self) -> None:
        """Flush and close every open shard journal (idempotent)."""
        for journal in self._journals.values():
            journal.close()

    def __enter__(self) -> "ShardedJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
