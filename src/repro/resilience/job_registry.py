"""Durable job registry for the DSE job server.

Schema ``c2bound.jobs/1``: an append-only JSONL file whose first line
is a header and whose remaining lines are job lifecycle records::

    {"type": "header", "schema": "c2bound.jobs/1", "run_id": "…",
     "meta": {…}}
    {"type": "submit", "job": "…", "tenant": "acme", "priority": 1,
     "seq": 7, "spec": {…}}
    {"type": "done", "job": "…", "status": "done", "charged": 123,
     "result": {…}}
    {"type": "cancel", "job": "…"}

The registry is the server's source of truth across restarts: a job
with a ``submit`` record but no terminal record was in flight (or
queued) when the process died and must be re-enqueued with its
*original* ``(priority, seq)`` — admission order is durable, so the
resumed schedule is the schedule the crashed server would have run.  A
terminal ``done`` record carries the canonical result document and the
evaluation count charged to the tenant, so finished work is servable
after a restart without re-running anything and budget accounting is
replayed exactly-once.

Crash safety matches :mod:`repro.resilience.checkpoint`: lines are
written whole and flushed, so a crash can only tear the final line;
:func:`replay_registry` drops exactly that (counted as
``resilience.jobs.torn_tail``) and refuses anything else malformed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.errors import CheckpointError
from repro.obs import get_registry
from repro.resilience.checkpoint import new_run_id

__all__ = ["JOBS_SCHEMA", "JobRegistry", "RegistryReplay", "replay_registry"]

JOBS_SCHEMA = "c2bound.jobs/1"

_TERMINAL = ("done", "failed", "timeout", "cancelled")


@dataclass
class RegistryReplay:
    """What a registry file says happened before this process started.

    Attributes
    ----------
    submits:
        Every ``submit`` record in append (= admission) order.
    terminal:
        Job id → its terminal record (``done``/``cancel``).
    pending:
        The ``submit`` records with no terminal record — the jobs a
        restarted server must re-enqueue, in original admission order.
    next_seq:
        One past the largest ``seq`` seen, so new admissions continue
        the durable arrival order.
    """

    submits: "list[dict]" = field(default_factory=list)
    terminal: "dict[str, dict]" = field(default_factory=dict)
    pending: "list[dict]" = field(default_factory=list)
    next_seq: int = 0


class JobRegistry:
    """Append-only job ledger (one per server state directory).

    Use :meth:`create` for a fresh ledger or :meth:`open_resume` to
    append to an existing one after replaying it.  Not constructed
    directly.
    """

    def __init__(self, path: Path, header: dict, handle: "IO[str]") -> None:
        self.path = path
        self.header = header
        self._handle = handle
        self._ctr_appended = get_registry().counter(
            "resilience.jobs.appended")

    @classmethod
    def create(cls, path: "str | Path", *, run_id: "str | None" = None,
               meta: "dict | None" = None) -> "JobRegistry":
        """Start a fresh registry at ``path`` (truncating any old one)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {"type": "header", "schema": JOBS_SCHEMA,
                  "run_id": run_id if run_id is not None else new_run_id(),
                  "meta": dict(meta) if meta else {}}
        handle = open(path, "w")
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        handle.flush()
        return cls(path, header, handle)

    @classmethod
    def open_resume(cls, path: "str | Path") -> "tuple[JobRegistry, RegistryReplay]":
        """Open an existing registry for appending, replaying it first.

        A missing file degenerates to :meth:`create` with an empty
        replay.  A torn final line (the only tear an append-only writer
        can produce) is healed by rewriting the surviving prefix before
        appending resumes.
        """
        path = Path(path)
        if not path.exists():
            return cls.create(path), RegistryReplay()
        header, records = _parse_registry(path)
        replay = _fold_records(path, records)
        tmp = path.with_suffix(path.suffix + ".resume-tmp")
        with open(tmp, "w") as out:
            out.write(json.dumps(header, sort_keys=True) + "\n")
            for record in records:
                out.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, path)
        handle = open(path, "a")
        return cls(path, header, handle), replay

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._ctr_appended.inc()

    def append_submit(self, *, job_id: str, tenant: str, priority: int,
                      seq: int, spec: dict) -> None:
        """Ledger an admitted job the moment admission succeeds."""
        self._append({"type": "submit", "job": str(job_id),
                      "tenant": str(tenant), "priority": int(priority),
                      "seq": int(seq), "spec": dict(spec)})

    def append_done(self, *, job_id: str, status: str, charged: int,
                    result: "dict | None") -> None:
        """Ledger a job's terminal outcome (``done``/``failed``/``timeout``)."""
        if status not in _TERMINAL:
            raise CheckpointError(
                f"job status {status!r} is not terminal "
                f"(expected one of {_TERMINAL})")
        self._append({"type": "done", "job": str(job_id),
                      "status": str(status), "charged": int(charged),
                      "result": result})

    def append_cancel(self, *, job_id: str) -> None:
        """Ledger a cancellation of a still-queued job."""
        self._append({"type": "cancel", "job": str(job_id)})

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JobRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _parse_registry(path: Path) -> "tuple[dict, list[dict]]":
    """Parse a registry into ``(header, body records)``.

    Tolerates a torn final line; anything else malformed raises
    :class:`~repro.errors.CheckpointError`.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read job registry {path}: {exc}") from exc
    lines = text.split("\n")
    torn = lines.pop() if lines else ""
    if torn:
        get_registry().counter("resilience.jobs.torn_tail").inc()
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            raise CheckpointError(
                f"job registry {path} line {lineno} is corrupt "
                "(not a torn tail — refusing to resume)") from exc
    if not records:
        raise CheckpointError(f"job registry {path} has no header")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != JOBS_SCHEMA:
        raise CheckpointError(
            f"job registry {path} has an invalid header "
            f"(schema {header.get('schema')!r})")
    return header, records[1:]


def _fold_records(path: Path, records: "list[dict]") -> RegistryReplay:
    """Body records → the replay view a restarting server needs."""
    replay = RegistryReplay()
    for record in records:
        kind = record.get("type")
        if kind == "submit":
            job_id = record.get("job")
            if not isinstance(job_id, str) or "seq" not in record:
                raise CheckpointError(
                    f"job registry {path} has a malformed submit record")
            replay.submits.append(record)
            replay.next_seq = max(replay.next_seq, int(record["seq"]) + 1)
        elif kind == "done":
            replay.terminal[str(record.get("job"))] = record
        elif kind == "cancel":
            replay.terminal[str(record.get("job"))] = {
                "type": "done", "job": record.get("job"),
                "status": "cancelled", "charged": 0, "result": None}
        else:
            raise CheckpointError(
                f"job registry {path} has an unknown record type {kind!r}")
    replay.pending = [s for s in replay.submits
                      if s["job"] not in replay.terminal]
    return replay


def replay_registry(path: "str | Path") -> RegistryReplay:
    """Read a registry back without opening it for append."""
    path = Path(path)
    if not path.exists():
        return RegistryReplay()
    _header, records = _parse_registry(path)
    return _fold_records(path, records)
