"""Seeded, deterministic fault injection for the resilience test suites.

Chaos testing is only useful when a failing run can be replayed: every
fault here fires at a *content-addressed* point (a specific
configuration, a specific cache entry) a *bounded* number of times,
with the bound enforced through on-disk fuse files that survive worker
crashes and process-pool rebuilds.  Running the same plan twice
therefore injects the same faults at the same points — and a recovered
run can be compared bit-for-bit against a fault-free one.

Fault kinds (:class:`Fault.kind`):

- ``crash`` — hard-kill the evaluating process (``os._exit``), the way
  an OOM kill or segfault takes out a pool worker; the parent observes
  ``BrokenProcessPool``.
- ``transient`` — raise :class:`~repro.errors.TransientError`, the
  retryable taxonomy branch.
- ``fatal`` — raise :class:`~repro.errors.FatalError`, which retry
  logic must *not* swallow.
- ``delay`` — stall the evaluation (for exercising chunk deadlines).

All classes are picklable (plain data + paths), so a
:class:`FaultyEvaluator` rides into
:class:`~repro.dse.batch.ParallelEvaluator` pool workers exactly like
the real evaluators do.  :func:`corrupt_cache_entries` deterministically
garbles persisted :class:`~repro.sim.cache_store.SimCacheStore` entries
for the quarantine tests, and :class:`ExitAfter` simulates a SIGKILL
mid-search for the checkpoint/resume round-trip check.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.dse.evaluate import batch_evaluate, canonical_key, is_feasible
from repro.errors import FatalError, InvalidParameterError, TransientError
from repro.obs import get_registry

__all__ = ["Fault", "FaultPlan", "FaultInjector", "FaultyEvaluator",
           "ExitAfter", "config_token", "corrupt_cache_entries"]

_KINDS = ("crash", "transient", "fatal", "delay")

#: Exit status used by ``crash`` faults and :class:`ExitAfter` — chosen
#: to be recognizable in CI logs (and distinct from pytest's own codes).
CRASH_EXIT_STATUS = 77


def config_token(config: dict) -> str:
    """Short stable token identifying a configuration.

    The fault plan addresses evaluations by this token, so a fault
    follows its configuration through any chunking, batching or worker
    placement.
    """
    payload = repr(canonical_key(config)).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class Fault:
    """One injected failure.

    Attributes
    ----------
    kind:
        One of ``crash`` / ``transient`` / ``fatal`` / ``delay``.
    token:
        The :func:`config_token` of the configuration that triggers it
        (or any caller-chosen label when fired manually).
    times:
        How many evaluations of the configuration fire the fault before
        it burns out; ``None`` means every time.
    delay_s:
        Stall duration for ``delay`` faults.
    worker_only:
        Fire only in processes other than the plan's creator — lets a
        persistent ``crash`` fault prove the serial-fallback path
        without also killing the parent.
    """

    kind: str
    token: str
    times: "int | None" = 1
    delay_s: float = 0.0
    worker_only: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.times is not None and self.times < 1:
            raise InvalidParameterError(
                f"times must be >= 1 or None, got {self.times}")
        if self.delay_s < 0:
            raise InvalidParameterError(
                f"delay_s must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults sharing one fuse directory.

    Attributes
    ----------
    seed:
        Recorded for provenance (plans are fully explicit; the seed
        labels which chaos schedule produced them).
    state_dir:
        Directory holding the fuse files that make ``times`` bounds
        crash-proof and cross-process.
    faults:
        The injected failures.
    parent_pid:
        PID of the plan's creator, captured at construction — the
        anchor for ``worker_only`` faults.
    """

    seed: int
    state_dir: str
    faults: tuple[Fault, ...] = ()
    parent_pid: int = field(default_factory=os.getpid)

    def injector(self) -> "FaultInjector":
        """A live injector for this plan."""
        return FaultInjector(self)


class FaultInjector:
    """Executes a :class:`FaultPlan` at content-addressed fire points.

    The injector is consulted with a token (usually
    :func:`config_token` of the configuration about to be evaluated);
    if an un-burned fault matches, it fires.  Fuse accounting uses
    ``O_CREAT | O_EXCL`` files under ``plan.state_dir``, so the
    "fire at most ``times`` times" bound holds across worker crashes,
    pool rebuilds and resumed runs alike.
    """

    def __init__(self, plan: FaultPlan, *,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self.sleep = sleep
        self._by_token: dict[str, list[Fault]] = {}
        for fault in plan.faults:
            self._by_token.setdefault(fault.token, []).append(fault)
        Path(plan.state_dir).mkdir(parents=True, exist_ok=True)

    # Pickling drops the (unpicklable only if customized) sleep hook in
    # workers; they rebuild with the real clock.
    def __getstate__(self) -> dict:
        return {"plan": self.plan}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["plan"])

    def _claim_fuse(self, fault: Fault) -> bool:
        """Atomically claim one firing; False once ``times`` are burned."""
        if fault.times is None:
            return True
        stem = f"{fault.kind}-{fault.token}"
        for i in range(fault.times):
            path = Path(self.plan.state_dir) / f"{stem}.{i}"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fire(self, token: str) -> None:
        """Fire every matching un-burned fault for ``token``.

        ``delay`` faults stall and return; ``transient``/``fatal``
        raise; ``crash`` hard-exits the process.  Firing order follows
        plan order, so a plan mixing kinds is deterministic.
        """
        for fault in self._by_token.get(token, ()):
            if fault.worker_only and os.getpid() == self.plan.parent_pid:
                continue
            if not self._claim_fuse(fault):
                continue
            if fault.kind == "delay":
                self.sleep(fault.delay_s)
            elif fault.kind == "transient":
                raise TransientError(
                    f"injected transient fault at {token}")
            elif fault.kind == "fatal":
                raise FatalError(f"injected fatal fault at {token}")
            else:  # crash
                # Flush nothing, warn nobody: a real SIGKILL doesn't.
                os._exit(CRASH_EXIT_STATUS)


class FaultyEvaluator:
    """Evaluator wrapper that consults a fault plan before each point.

    Wraps any scalar/batch evaluator; picklable whenever the inner
    evaluator is, so it drops straight into the process-pool path.  The
    wrapper is cost-transparent: when no fault fires, results are
    bit-identical to the inner evaluator's.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._injector: "FaultInjector | None" = None

    def _fire(self, config: dict) -> None:
        if self._injector is None:
            self._injector = FaultInjector(self.plan)
        self._injector.fire(config_token(config))

    def __getstate__(self) -> dict:
        return {"inner": self.inner, "plan": self.plan}

    def __setstate__(self, state: dict) -> None:
        self.inner = state["inner"]
        self.plan = state["plan"]
        self._injector = None

    def evaluate(self, config: dict) -> float:
        self._fire(config)
        return float(self.inner.evaluate(config))

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        # Fire point-by-point so a fault lands on its own configuration
        # (and a crash loses exactly the chunk being computed).
        for config in configs:
            self._fire(config)
        return batch_evaluate(self.inner, configs)

    def is_feasible(self, config: dict) -> bool:
        return is_feasible(self.inner, config)


class ExitAfter:
    """Hard-exit the process after ``n`` successful evaluations.

    A deterministic stand-in for "SIGKILL mid-search": wraps an
    evaluator, counts *fresh* work it performs, and ``os._exit``\\ s
    once the budget is consumed — after results have been handed back
    for preceding points, exactly like a kill between two batches.  The
    checkpoint/resume round-trip check runs a search under this wrapper
    in a child process, then resumes from the journal the killed run
    left behind.
    """

    def __init__(self, inner, n: int) -> None:
        if n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {n}")
        self.inner = inner
        self.n = n
        self._done = 0

    def evaluate(self, config: dict) -> float:
        if self._done >= self.n:
            os._exit(CRASH_EXIT_STATUS)
        cost = float(self.inner.evaluate(config))
        self._done += 1
        return cost

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        out = np.array([self.evaluate(c) for c in configs], dtype=float)
        return out

    def is_feasible(self, config: dict) -> bool:
        return is_feasible(self.inner, config)


def corrupt_cache_entries(root: "str | Path", *, seed: int,
                          fraction: float = 0.5,
                          mode: str = "truncate") -> list[Path]:
    """Deterministically damage persisted simulation-cache entries.

    Picks ``fraction`` of the entries under ``root`` (a
    :class:`~repro.sim.cache_store.SimCacheStore` directory) using a
    seeded generator over the *sorted* entry list — the same files are
    hit for the same seed regardless of filesystem order — and damages
    them in place:

    - ``truncate``: cut the JSON in half (a crashed writer's torn file);
    - ``garbage``: overwrite with non-JSON bytes (bit rot);
    - ``wrong_type``: valid JSON whose ``cost`` is not a number.

    Returns the damaged paths.  Publishes
    ``resilience.faults.cache_corrupted`` so chaos runs account for
    what they broke.
    """
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError(
            f"fraction must be in [0, 1], got {fraction}")
    if mode not in ("truncate", "garbage", "wrong_type"):
        raise InvalidParameterError(f"unknown corruption mode {mode!r}")
    root = Path(root)
    entries = sorted(root.glob("??/*.json"))
    if not entries:
        return []
    rng = np.random.default_rng(seed)
    count = max(1, int(round(fraction * len(entries))))
    picked = [entries[int(i)] for i in
              rng.choice(len(entries), size=min(count, len(entries)),
                         replace=False)]
    for path in picked:
        if mode == "truncate":
            text = path.read_text()
            path.write_text(text[: max(1, len(text) // 2)])
        elif mode == "garbage":
            path.write_bytes(b"\x00\xffnot json\xfe")
        else:
            path.write_text('{"cost": "not-a-float"}')
    get_registry().counter("resilience.faults.cache_corrupted").inc(
        len(picked))
    return picked
