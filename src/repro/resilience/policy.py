"""Deterministic retry/timeout/backoff policies.

Long DSE sweeps meet transient failures — a pool worker OOM-killed, a
filesystem hiccup, a hung simulation — and the correct response is
almost always "try again, a bounded number of times, with growing
delays".  This module makes that response *reproducible*:

- :class:`RetryPolicy` computes every backoff delay as a pure function
  of ``(seed, attempt)`` — the jitter that de-synchronizes concurrent
  retriers is a hash, not a draw from a global RNG — so two runs of the
  same failing workload retry on an identical schedule;
- :class:`Deadline` wraps a monotonic clock (injectable for tests) into
  a remaining-time budget;
- :func:`retry_call` runs a callable under a policy with an injectable
  ``sleep`` hook, classifying failures through the
  :class:`~repro.errors.TransientError` / :class:`~repro.errors.FatalError`
  taxonomy.

The ``C2L006`` lint rule enforces the injection idiom: code in retry
paths may *reference* ``time.sleep`` as a default hook but never call
it directly, and may not draw jitter from unseeded RNG state.

Every retry and give-up is published to the metrics registry
(``resilience.retries`` / ``resilience.giveups``), so failure handling
is visible in metrics snapshots and run manifests.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import (
    FatalError,
    InvalidParameterError,
    RetryExhaustedError,
    TransientError,
)
from repro.obs import get_registry, get_tracer

__all__ = ["RetryPolicy", "Deadline", "retry_call", "deterministic_unit"]

_T = TypeVar("_T")


def deterministic_unit(*parts: object) -> float:
    """A reproducible pseudo-uniform value in ``[0, 1)`` from ``parts``.

    SHA-256 over the ``repr`` of the parts — identical on every
    platform and in every process, unlike anything drawn from RNG
    state.  This is the only sanctioned jitter source in retry paths
    (rule ``C2L006``).
    """
    payload = "\x1f".join(repr(p) for p in parts).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait between attempts.

    Attributes
    ----------
    max_attempts:
        Total attempts (first try included); must be >= 1.
    base_delay:
        Delay before the first retry, in seconds.
    multiplier:
        Exponential backoff factor per further retry.
    max_delay:
        Cap on any single delay.
    jitter:
        Relative jitter amplitude in ``[0, 1]``: the delay for attempt
        ``k`` is scaled by ``1 + jitter * (2*u - 1)`` where ``u`` is
        :func:`deterministic_unit` of ``(seed, k)`` — reproducible, not
        random.
    seed:
        Folded into the jitter hash so distinct retriers (e.g. chunk
        indices) de-synchronize while each stays deterministic.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise InvalidParameterError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise InvalidParameterError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Backoff delay (seconds) after failed attempt ``attempt`` (1-based).

        Pure function of ``(policy, attempt)``: exponential growth from
        ``base_delay``, capped at ``max_delay``, scaled by the
        deterministic jitter.
        """
        if attempt < 1:
            raise InvalidParameterError(
                f"attempt must be >= 1, got {attempt}")
        raw = self.base_delay * (self.multiplier ** (attempt - 1))
        capped = min(raw, self.max_delay)
        if not self.jitter:
            return capped
        unit = deterministic_unit("retry-jitter", self.seed, attempt)
        return capped * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt.

        :class:`~repro.errors.TransientError` (and subclasses) retry;
        :class:`~repro.errors.FatalError` never does; anything outside
        the taxonomy is treated as fatal — unknown failures should
        surface, not loop.
        """
        if isinstance(error, FatalError):
            return False
        return isinstance(error, TransientError)

    def with_seed(self, seed: int) -> "RetryPolicy":
        """The same policy with a different jitter seed."""
        return RetryPolicy(max_attempts=self.max_attempts,
                           base_delay=self.base_delay,
                           multiplier=self.multiplier,
                           max_delay=self.max_delay,
                           jitter=self.jitter, seed=seed)


class Deadline:
    """A remaining-time budget over an injectable monotonic clock.

    Parameters
    ----------
    timeout_s:
        Total budget in seconds; ``None`` means unbounded.
    clock:
        Monotonic time source (``time.monotonic`` by default; tests
        inject a fake).
    """

    __slots__ = ("timeout_s", "_clock", "_start")

    def __init__(self, timeout_s: "float | None", *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise InvalidParameterError(
                f"timeout must be > 0 or None, got {timeout_s}")
        self.timeout_s = timeout_s
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._start

    def remaining(self) -> "float | None":
        """Seconds left (clamped at 0), or ``None`` when unbounded."""
        if self.timeout_s is None:
            return None
        return max(0.0, self.timeout_s - self.elapsed())

    @property
    def expired(self) -> bool:
        """True once the budget is spent (never for unbounded)."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0


def retry_call(fn: "Callable[[], _T]", *,
               policy: "RetryPolicy | None" = None,
               sleep: Callable[[float], None] = time.sleep,
               deadline: "Deadline | None" = None,
               on_retry: "Callable[[int, BaseException], None] | None" = None,
               what: str = "call") -> _T:
    """Run ``fn`` under ``policy``, retrying transient failures.

    Parameters
    ----------
    fn:
        Zero-argument callable (bind arguments with a closure/partial).
    policy:
        Retry policy (default: ``RetryPolicy()``).
    sleep:
        Delay hook — injectable so tests (and the fault harness) run
        instantly while recording the deterministic schedule.
    deadline:
        Optional overall time budget.  Backoff sleeps are clamped to
        the remaining budget, and once the budget cannot cover another
        backoff the loop gives up immediately instead of sleeping past
        the deadline.
    on_retry:
        Called as ``on_retry(attempt, error)`` before each backoff.
    what:
        Human-readable label for error messages and metrics.

    Raises
    ------
    RetryExhaustedError
        After ``policy.max_attempts`` transient failures (or an expired
        deadline), chaining the last error.
    """
    policy = policy if policy is not None else RetryPolicy()
    registry = get_registry()
    retries = registry.counter("resilience.retries")
    giveups = registry.counter("resilience.giveups")
    last_error: "BaseException | None" = None
    attempt = 0
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except BaseException as exc:  # noqa: B036 - classified below
            if not policy.retryable(exc):
                raise
            last_error = exc
        if attempt >= policy.max_attempts:
            break
        delay = policy.delay(attempt)
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining is not None and delay >= remaining:
                # Sleeping would outlive the job's budget: give up now
                # rather than waking up past the deadline.
                break
        retries.inc()
        if on_retry is not None:
            on_retry(attempt, last_error)
        with get_tracer().span("resilience.backoff", attempt=attempt,
                               what=what):
            sleep(delay)
    giveups.inc()
    raise RetryExhaustedError(
        f"{what} failed after {attempt} attempt(s): {last_error!r}",
        attempts=attempt, last_error=last_error,
    ) from last_error
