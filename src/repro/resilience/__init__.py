"""Fault tolerance for long-horizon DSE runs (``docs/ROBUSTNESS.md``).

The paper's workload — APS narrowing a 10^6-point space to ~10^2
simulations — is exactly the kind of hours-long sweep that must survive
a crashed pool worker, a hung simulation, a corrupt cache file or a
SIGTERM without losing work *or* determinism.  This package supplies
the three layers that make that true:

- :mod:`repro.resilience.policy` — deterministic retry/backoff/timeout
  primitives (:class:`RetryPolicy`, :class:`Deadline`,
  :func:`retry_call`) over the
  :class:`~repro.errors.TransientError` / :class:`~repro.errors.FatalError`
  taxonomy, with injectable clock and sleep so retries are reproducible;
- :mod:`repro.resilience.checkpoint` — append-only JSONL journals
  (schema ``c2bound.checkpoint/1``) of every charged evaluation, and
  the replay-based resume every search method inherits through
  :class:`~repro.dse.evaluate.BudgetedEvaluator`;
- :mod:`repro.resilience.shard_ledger` — the sweep fabric's per-shard
  exactly-once ledger: the same journal wire format fanned out over
  ``shard-XXXX.jsonl`` files so a sweep that loses workers mid-flight
  resumes bit-identically without a single-file serialization point;
- :mod:`repro.resilience.job_registry` — the job server's durable
  ledger (schema ``c2bound.jobs/1``): admitted jobs and their terminal
  outcomes, replayed on restart so in-flight jobs resume with their
  original admission order and budgets are charged exactly once;
- :mod:`repro.resilience.faults` — the seeded fault-injection harness
  (worker crashes, delays, transient/fatal raises, cache corruption)
  behind ``tests/resilience`` and the chaos CI job.

The consumers are :class:`repro.dse.batch.ParallelEvaluator` (chunk
resubmission, pool rebuilds, serial fallback) and the CLI
(``--checkpoint DIR`` / ``--resume``).  Every retry, failover and
restore is published as a ``resilience.*`` metric and lands in run
manifests.
"""

from repro.resilience.policy import (
    Deadline,
    RetryPolicy,
    deterministic_unit,
    retry_call,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointDefaults,
    CheckpointJournal,
    checkpoint_hash,
    get_checkpoint_defaults,
    journal_for_method,
    load_journal,
    new_run_id,
    read_journal_headers,
    set_checkpoint_defaults,
)
from repro.resilience.job_registry import (
    JOBS_SCHEMA,
    JobRegistry,
    RegistryReplay,
    replay_registry,
)
from repro.resilience.shard_ledger import (
    DEFAULT_LEDGER_SHARDS,
    ShardedJournal,
    shard_of_canonical_key,
)
from repro.resilience.faults import (
    CRASH_EXIT_STATUS,
    ExitAfter,
    Fault,
    FaultInjector,
    FaultPlan,
    FaultyEvaluator,
    config_token,
    corrupt_cache_entries,
)

__all__ = [
    "RetryPolicy",
    "Deadline",
    "retry_call",
    "deterministic_unit",
    "CHECKPOINT_SCHEMA",
    "CheckpointJournal",
    "CheckpointDefaults",
    "checkpoint_hash",
    "load_journal",
    "new_run_id",
    "read_journal_headers",
    "get_checkpoint_defaults",
    "set_checkpoint_defaults",
    "journal_for_method",
    "JOBS_SCHEMA",
    "JobRegistry",
    "RegistryReplay",
    "replay_registry",
    "DEFAULT_LEDGER_SHARDS",
    "ShardedJournal",
    "shard_of_canonical_key",
    "CRASH_EXIT_STATUS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "FaultyEvaluator",
    "ExitAfter",
    "config_token",
    "corrupt_cache_entries",
]
