"""Checkpoint/resume journals for long-running design-space searches.

Schema ``c2bound.checkpoint/1``: an append-only JSONL file whose first
line is a header and whose remaining lines are records::

    {"type": "header", "schema": "c2bound.checkpoint/1", "run_id": "…",
     "method": "aps", "meta": {…}}
    {"type": "eval", "k": [["a0", 1.0], …], "c": "0.0123…"}
    {"type": "state", "tag": "generation", "data": {…}}

- **eval** records are the evaluation ledger: one line per *charged*
  (fresh) evaluation, written by
  :class:`~repro.dse.evaluate.BudgetedEvaluator` the moment the budget
  is spent.  Keys are the canonical configuration items
  (:func:`~repro.dse.evaluate.canonical_key`); costs are ``repr(float)``
  strings, which round-trip IEEE-754 doubles exactly.
- **state** records carry optional search-side snapshots (RNG state,
  generation counters); searches that replay deterministically do not
  need them, but the schema reserves the slot.

Crash safety: lines are written whole and flushed; a crash can only
tear the *final* line, and :meth:`CheckpointJournal.load` tolerates
exactly that (a torn tail is dropped; a torn *middle* line means
tampering and raises :class:`~repro.errors.CheckpointError`).

Resume model — **replay with a warm ledger**: every search in
:mod:`repro.dse` is a deterministic function of its seed, so a resumed
run re-executes the search from the start while the restored ledger
answers already-paid evaluations from cache with their exact recorded
costs *and* restores the budget counters.  The resumed run therefore
reproduces the interrupted run's trajectory bit-for-bit and ends in the
state an uninterrupted run would have reached — same best
configuration, same cost, same total evaluation count
(``tests/resilience`` enforces this; knobs in ``docs/ROBUSTNESS.md``).

:func:`set_checkpoint_defaults` is the process-wide wiring used by the
CLI's ``--checkpoint DIR`` / ``--resume`` flags: once set, every
:class:`~repro.dse.evaluate.BudgetedEvaluator` journals itself into the
directory (one file per search method) with no search-code changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from repro.errors import CheckpointError
from repro.obs import get_registry

__all__ = ["CHECKPOINT_SCHEMA", "CheckpointJournal", "checkpoint_hash",
           "load_journal", "CheckpointDefaults", "get_checkpoint_defaults",
           "set_checkpoint_defaults", "journal_for_method",
           "read_journal_headers", "new_run_id"]

CHECKPOINT_SCHEMA = "c2bound.checkpoint/1"


def new_run_id() -> str:
    """A fresh run identifier (hex, collision-free for our purposes)."""
    return uuid.uuid4().hex[:16]


def checkpoint_hash(path: "str | Path") -> "str | None":
    """SHA-256 over a journal's bytes (``None`` when it doesn't exist).

    Recorded in resumed runs' manifests so the exact ledger a run
    restarted from is auditable.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    return hashlib.sha256(data).hexdigest()


def _encode_key(key: tuple) -> list:
    """Canonical-key tuple → JSON array (floats exact via repr)."""
    out = []
    for name, value in key:
        if isinstance(value, float):
            out.append([name, "f", repr(value)])
        else:
            out.append([name, "v", value])
    return out


def _decode_key(items: list) -> tuple:
    """Inverse of :func:`_encode_key`."""
    decoded = []
    for name, tag, value in items:
        decoded.append((name, float(value) if tag == "f" else value))
    return tuple(decoded)


class CheckpointJournal:
    """One search's append-only evaluation ledger.

    Use :meth:`create` for a fresh journal (truncates any existing
    file) or :meth:`open_resume` to append to an existing one after
    reading its records back.  Not constructed directly.
    """

    def __init__(self, path: Path, header: dict, handle: "IO[str]") -> None:
        self.path = path
        self.header = header
        self._handle = handle
        self._ctr_appended = get_registry().counter(
            "resilience.checkpoint.appended")

    # ---- constructors -----------------------------------------------------

    @classmethod
    def create(cls, path: "str | Path", *, method: "str | None" = None,
               run_id: "str | None" = None,
               meta: "dict | None" = None) -> "CheckpointJournal":
        """Start a fresh journal at ``path`` (truncating any old one)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "type": "header",
            "schema": CHECKPOINT_SCHEMA,
            "run_id": run_id if run_id is not None else new_run_id(),
            "method": method,
            "meta": dict(meta) if meta else {},
        }
        handle = open(path, "w")
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        handle.flush()
        return cls(path, header, handle)

    @classmethod
    def open_resume(cls, path: "str | Path", *,
                    method: "str | None" = None) -> "tuple[CheckpointJournal, list[tuple[tuple, float]], list[dict]]":
        """Open an existing journal for appending.

        Returns ``(journal, evals, states)`` where ``evals`` is the
        restored ledger (canonical key, exact cost) in append order and
        ``states`` the raw state records.  When ``method`` is given it
        must match the header's.

        A missing file degenerates to :meth:`create` with empty
        restores — resuming a run that never checkpointed is just a
        fresh run.
        """
        path = Path(path)
        if not path.exists():
            return cls.create(path, method=method), [], []
        header, records = _parse_journal(path)
        evals, states = _split_records(path, records)
        if method is not None and header.get("method") not in (None, method):
            raise CheckpointError(
                f"checkpoint {path} was written by method "
                f"{header.get('method')!r}, not {method!r}")
        # Re-write the surviving prefix (in original order) so a torn
        # tail from the crashed writer is healed before we append.
        tmp = path.with_suffix(path.suffix + ".resume-tmp")
        with open(tmp, "w") as out:
            out.write(json.dumps(header, sort_keys=True) + "\n")
            for record in records:
                out.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, path)
        handle = open(path, "a")
        return cls(path, header, handle), evals, states

    # ---- writing ----------------------------------------------------------

    def append_eval(self, key: tuple, cost: float) -> None:
        """Ledger one charged evaluation (flushed immediately)."""
        self._handle.write(_eval_line(key, cost))
        self._handle.flush()
        self._ctr_appended.inc()

    def append_evals(self, entries: "list[tuple[tuple, float]]") -> None:
        """Ledger a batch of charged evaluations with one flush."""
        if not entries:
            return
        self._handle.write(
            "".join(_eval_line(key, cost) for key, cost in entries))
        self._handle.flush()
        self._ctr_appended.inc(len(entries))

    def append_state(self, tag: str, data: dict) -> None:
        """Record an optional search-state snapshot."""
        record = {"type": "state", "tag": tag, "data": data}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _eval_line(key: tuple, cost: float) -> str:
    record = {"type": "eval", "k": _encode_key(key), "c": repr(float(cost))}
    return json.dumps(record, sort_keys=True) + "\n"


def _parse_journal(path: Path) -> "tuple[dict, list[dict]]":
    """Parse a journal into ``(header, body records)``.

    Tolerates a torn final line (the only tear an append-only writer
    can produce); anything else malformed raises
    :class:`~repro.errors.CheckpointError`.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    lines = text.split("\n")
    # A well-formed file ends with "\n" → last element is "".  Anything
    # after the final newline is a torn tail and is dropped.
    torn = lines.pop() if lines else ""
    if torn:
        get_registry().counter("resilience.checkpoint.torn_tail").inc()
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            raise CheckpointError(
                f"checkpoint {path} line {lineno} is corrupt "
                "(not a torn tail — refusing to resume)") from exc
    if not records:
        raise CheckpointError(f"checkpoint {path} has no header")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has an invalid header "
            f"(schema {header.get('schema')!r})")
    return header, records[1:]


def _split_records(path: Path,
                   records: "list[dict]") -> "tuple[list[tuple[tuple, float]], list[dict]]":
    """Body records → (evaluation ledger, state snapshots)."""
    evals: list[tuple[tuple, float]] = []
    states: list[dict] = []
    for record in records:
        kind = record.get("type")
        if kind == "eval":
            try:
                evals.append((_decode_key(record["k"]),
                              float(record["c"])))
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint {path} has a malformed eval record") from exc
        elif kind == "state":
            states.append(record)
        else:
            raise CheckpointError(
                f"checkpoint {path} has an unknown record type {kind!r}")
    return evals, states


def load_journal(path: "str | Path") -> "tuple[dict, list[tuple[tuple, float]], list[dict]]":
    """Read a journal back: ``(header, evals, states)``."""
    path = Path(path)
    header, records = _parse_journal(path)
    evals, states = _split_records(path, records)
    return header, evals, states


def read_journal_headers(directory: "str | Path") -> "list[dict]":
    """Headers of every journal in a checkpoint directory.

    Used for manifest lineage: the ``run_id`` of each journal names the
    run that *created* it (resumes append, so the header survives).
    Unreadable or header-less files are skipped — lineage reporting
    must never fail a run.
    """
    directory = Path(directory)
    headers: list[dict] = []
    # Flat journals plus one directory level of sharded-ledger files
    # (<dir>/<method>/shard-XXXX.jsonl).
    paths = sorted(directory.glob("*.jsonl")) + sorted(
        directory.glob("*/*.jsonl"))
    for path in paths:
        try:
            with open(path) as handle:
                first = handle.readline().strip()
            header = json.loads(first)
        except (OSError, ValueError):
            continue
        if (isinstance(header, dict) and header.get("type") == "header"
                and header.get("schema") == CHECKPOINT_SCHEMA):
            header = dict(header)
            header["path"] = str(path)
            headers.append(header)
    return headers


# ---- process-wide defaults (the CLI's --checkpoint/--resume wiring) -------

@dataclass
class CheckpointDefaults:
    """Process-wide checkpoint wiring.

    Attributes
    ----------
    directory:
        Journal directory; ``None`` (the default) disables journaling.
    resume:
        Restore existing journals instead of truncating them.
    run_id:
        Identifier stamped into journals this process creates.
    sharded:
        Use the fabric's per-shard ledger
        (:class:`~repro.resilience.shard_ledger.ShardedJournal`): each
        method claims a *directory* of shard journals instead of one
        file.  The CLI couples this to ``--fabric``.
    ledger_shards:
        Shard fan-out for new sharded ledgers.
    """

    directory: "Path | None" = None
    resume: bool = False
    run_id: "str | None" = None
    sharded: bool = False
    ledger_shards: int = 16


_defaults = CheckpointDefaults()
_claimed_paths: "set[str]" = set()


def get_checkpoint_defaults() -> CheckpointDefaults:
    """The live defaults object."""
    return _defaults


def set_checkpoint_defaults(*, directory: "str | Path | None" = None,
                            resume: bool = False,
                            run_id: "str | None" = None,
                            sharded: bool = False,
                            ledger_shards: int = 16) -> CheckpointDefaults:
    """Install process-wide checkpoint wiring (CLI / test harness).

    Passing ``directory=None`` turns journaling off.  Claim bookkeeping
    for per-method file names resets on every call, so consecutive runs
    in one process map methods to the same file names.
    """
    _defaults.directory = Path(directory) if directory is not None else None
    _defaults.resume = bool(resume)
    _defaults.run_id = run_id
    _defaults.sharded = bool(sharded)
    _defaults.ledger_shards = int(ledger_shards)
    _claimed_paths.clear()
    return _defaults


def _candidate_stems(method: "str | None") -> "Iterator[str]":
    stem = method if method else "search"
    yield stem
    i = 2
    while True:
        yield f"{stem}-{i}"
        i += 1


def journal_for_method(method: "str | None"):
    """Open this process's journal for a search method, per the defaults.

    Returns ``None`` when journaling is off, otherwise
    ``(journal, restored_evals)``.  Each call claims the next free name
    for the method (``aps.jsonl``, ``aps-2.jsonl``, … — or the
    directories ``aps/``, ``aps-2/`` when ``sharded``) — deterministic
    across runs, so a resumed process maps the same searches to the
    same journals it wrote before dying.
    """
    defaults = _defaults
    if defaults.directory is None:
        return None
    for stem in _candidate_stems(method):
        path = (defaults.directory / stem if defaults.sharded
                else defaults.directory / f"{stem}.jsonl")
        key = str(path)
        if key in _claimed_paths:
            continue
        _claimed_paths.add(key)
        if defaults.sharded:
            # Imported lazily: shard_ledger builds on this module.
            from repro.resilience.shard_ledger import ShardedJournal
            if defaults.resume:
                return ShardedJournal.open_resume(path, method=method)
            return ShardedJournal.create(
                path, method=method, run_id=defaults.run_id,
                shard_count=defaults.ledger_shards), []
        if defaults.resume:
            journal, evals, _states = CheckpointJournal.open_resume(
                path, method=method)
            return journal, evals
        return CheckpointJournal.create(
            path, method=method, run_id=defaults.run_id), []
    raise AssertionError("unreachable")  # pragma: no cover
