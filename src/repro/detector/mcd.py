"""Miss Concurrency Detector (MCD).

Hardware model: a ring of per-cycle outstanding-miss counters plus a
small table of outstanding misses (mirroring the MSHR file, paper Fig. 4:
"with the hit information from HCD and the miss information from MSHR,
MCD is able to obtain the total number of pure miss cycles").

On each sealed cycle the coordinator supplies the HCD's hit concurrency;
if it is zero and misses are outstanding, the cycle is a *pure miss
cycle*: the wall count increments, the per-access pure-cycle total grows
by the number of outstanding misses, and every covering miss is flagged
pure (for the pure-miss-rate numerator).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, TraceError

__all__ = ["MissConcurrencyDetector"]


class MissConcurrencyDetector:
    """Cycle-bucketed miss activity + pure-miss accounting.

    Parameters
    ----------
    window:
        Ring depth in cycles (must match the coordinating HCD's).
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 2:
            raise InvalidParameterError(f"window must be >= 2, got {window}")
        self.window = window
        self._ring = np.zeros(window, dtype=np.int64)
        self.sealed_until = 0
        # Outstanding miss windows: id -> (start, end, pure_flag).
        self._live: dict[int, list] = {}
        self._next_id = 0
        self.misses = 0
        self.pure_misses = 0
        self.pure_miss_wall_cycles = 0
        self.total_pure_miss_access_cycles = 0
        self.max_event_end = 0

    def observe(self, miss_start: int, penalty: int) -> None:
        """Record one miss window ``[miss_start, miss_start + penalty)``."""
        if penalty < 1:
            raise TraceError(f"miss penalty must be >= 1, got {penalty}")
        if miss_start < self.sealed_until:
            raise TraceError(
                f"miss at cycle {miss_start} arrived after sealing "
                f"(window {self.window} too small)")
        end = miss_start + penalty
        if end - self.sealed_until > self.window:
            raise TraceError(
                f"miss window [{miss_start}, {end}) exceeds the "
                f"{self.window}-cycle detector ring; increase the window")
        self.misses += 1
        for c in range(miss_start, end):
            self._ring[c % self.window] += 1
        self._live[self._next_id] = [miss_start, end, False]
        self._next_id += 1
        self.max_event_end = max(self.max_event_end, end)

    def seal_cycle(self, cycle: int, hit_concurrency: int) -> None:
        """Classify one cycle given the HCD's hit activity."""
        if cycle != self.sealed_until:
            raise TraceError(
                f"cycles must be sealed in order; expected "
                f"{self.sealed_until}, got {cycle}")
        slot = cycle % self.window
        count = int(self._ring[slot])
        self._ring[slot] = 0
        self.sealed_until = cycle + 1
        if count > 0 and hit_concurrency == 0:
            self.pure_miss_wall_cycles += 1
            self.total_pure_miss_access_cycles += count
            for entry in self._live.values():
                if entry[0] <= cycle < entry[1]:
                    entry[2] = True
        # Retire misses fully behind the sealing frontier.
        done = [mid for mid, (s, e, _p) in self._live.items()
                if e <= self.sealed_until]
        for mid in done:
            if self._live[mid][2]:
                self.pure_misses += 1
            del self._live[mid]

    @property
    def miss_concurrency(self) -> float:
        """Running ``C_M`` over sealed pure-miss cycles."""
        if self.pure_miss_wall_cycles == 0:
            return 1.0
        return (self.total_pure_miss_access_cycles
                / self.pure_miss_wall_cycles)

    def pure_avg_miss_penalty(self) -> float:
        """Running ``pAMP`` (0 until a pure miss retires)."""
        if self.pure_misses == 0:
            return 0.0
        return self.total_pure_miss_access_cycles / self.pure_misses
