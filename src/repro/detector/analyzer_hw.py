"""The combined C-AMAT detector (paper Fig. 4).

:class:`CAMATDetector` coordinates an HCD and an MCD over a shared
cycle-sealing frontier: accesses stream in roughly time order (as emitted
by a core pipeline or the simulator's event loop), buckets older than the
reordering window are sealed in lockstep, and the HCD's per-cycle hit
concurrency is forwarded to the MCD — exactly the notification wire in
the paper's block diagram.

Fed a complete trace and drained, the detector reproduces the offline
:class:`repro.camat.TraceAnalyzer` parameters exactly (tested in
``tests/detector``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.camat.camat import CAMATParameters
from repro.camat.trace import AccessTrace
from repro.detector.hcd import HitConcurrencyDetector
from repro.detector.mcd import MissConcurrencyDetector
from repro.errors import InvalidParameterError

__all__ = ["CAMATDetector", "DetectorReport"]


@dataclass(frozen=True)
class DetectorReport:
    """Snapshot of the detector's running measurements.

    Mirrors :class:`repro.camat.TraceStatistics`'s Eq.-2 parameters, plus
    the conventional miss counters the MSHR side provides.
    """

    accesses: int
    misses: int
    pure_misses: int
    hit_time: float
    hit_concurrency: float
    pure_miss_rate: float
    pure_avg_miss_penalty: float
    miss_concurrency: float
    total_miss_penalty_cycles: int

    @property
    def camat(self) -> float:
        """Eq. 2 value from the running counters."""
        return self.as_params().value

    @property
    def miss_rate(self) -> float:
        """Conventional ``MR``."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def avg_miss_penalty(self) -> float:
        """Conventional ``AMP``."""
        if self.misses == 0:
            return 0.0
        return self.total_miss_penalty_cycles / self.misses

    @property
    def amat(self) -> float:
        """Eq. 1 value from the running counters."""
        return self.hit_time + self.miss_rate * self.avg_miss_penalty

    @property
    def concurrency(self) -> float:
        """``C = AMAT / C-AMAT`` (Eq. 3)."""
        camat = self.camat
        return self.amat / camat if camat > 0 else 1.0

    def as_params(self) -> CAMATParameters:
        """Eq. 2 parameter bundle."""
        return CAMATParameters(
            hit_time=max(self.hit_time, 1e-12),
            hit_concurrency=max(self.hit_concurrency, 1.0),
            pure_miss_rate=self.pure_miss_rate,
            pure_avg_miss_penalty=self.pure_avg_miss_penalty,
            miss_concurrency=max(self.miss_concurrency, 1.0),
        )


class CAMATDetector:
    """HCD + MCD behind one streaming interface.

    Parameters
    ----------
    window:
        Reordering tolerance in cycles (ring depth of both detectors).
        Events older than the sealing frontier are rejected, so the
        window must cover the maximum in-flight reordering of the event
        source (the simulator's heap guarantees near-chronological order;
        the default is generous).
    """

    def __init__(self, window: int = 8192) -> None:
        self.hcd = HitConcurrencyDetector(window)
        self.mcd = MissConcurrencyDetector(window)
        self.window = window
        self.total_miss_penalty_cycles = 0

    def observe(self, start: int, hit_cycles: int, miss_penalty: int) -> None:
        """Record one access (same triple as a trace record)."""
        if start < 0:
            raise InvalidParameterError(f"start must be >= 0, got {start}")
        # Seal everything that can no longer receive events.
        frontier = max(start + hit_cycles + miss_penalty,
                       self.hcd.max_event_end, self.mcd.max_event_end)
        self._seal_to(frontier - self.window)
        self.hcd.observe(start, hit_cycles)
        if miss_penalty > 0:
            self.total_miss_penalty_cycles += miss_penalty
            self.mcd.observe(start + hit_cycles, miss_penalty)

    def observe_trace(self, trace: AccessTrace) -> None:
        """Stream a whole trace through the detector, oldest first."""
        order = sorted(range(len(trace)), key=lambda i: trace[i].start)
        for i in order:
            a = trace[i]
            self.observe(a.start, a.hit_cycles, a.miss_penalty)

    def _seal_to(self, cycle: int) -> None:
        target = max(cycle, 0)
        while self.hcd.sealed_until < target:
            c = self.hcd.sealed_until
            hit_count = self.hcd.seal_cycle(c)
            self.mcd.seal_cycle(c, hit_count)

    def drain(self) -> None:
        """Seal all buffered cycles (end of measurement/epoch)."""
        self._seal_to(max(self.hcd.max_event_end, self.mcd.max_event_end))

    def report(self, *, drain: bool = True) -> DetectorReport:
        """Current measurements (draining first by default)."""
        if drain:
            self.drain()
        return DetectorReport(
            accesses=self.hcd.accesses,
            misses=self.mcd.misses,
            pure_misses=self.mcd.pure_misses,
            hit_time=self.hcd.mean_hit_time,
            hit_concurrency=self.hcd.hit_concurrency,
            pure_miss_rate=(self.mcd.pure_misses / self.hcd.accesses
                            if self.hcd.accesses else 0.0),
            pure_avg_miss_penalty=self.mcd.pure_avg_miss_penalty(),
            miss_concurrency=self.mcd.miss_concurrency,
            total_miss_penalty_cycles=self.total_miss_penalty_cycles,
        )
