"""Online C-AMAT detection hardware (paper Fig. 4).

The paper attaches a C-AMAT analyzer to the cache: a Hit Concurrency
Detector (HCD) counting hit cycles and hit phases, and a Miss Concurrency
Detector (MCD) that — given per-cycle hit activity from the HCD and miss
status from the MSHRs — counts pure miss cycles.  This package models
those structures as cycle-bucketed counters over a bounded reordering
window, exactly the "set of lightweight counters" the paper deploys for
online phase adaptation.

:class:`CAMATDetector` combines both and reports running
:class:`repro.camat.CAMATParameters`; fed a full trace it agrees exactly
with the offline :class:`repro.camat.TraceAnalyzer` (validated in the
test suite), while :class:`EpochDetector` reports per-epoch values for
phase tracking.
"""

from repro.detector.hcd import HitConcurrencyDetector
from repro.detector.mcd import MissConcurrencyDetector
from repro.detector.analyzer_hw import CAMATDetector, DetectorReport
from repro.detector.epochs import EpochDetector, EpochReport

__all__ = [
    "HitConcurrencyDetector",
    "MissConcurrencyDetector",
    "CAMATDetector",
    "DetectorReport",
    "EpochDetector",
    "EpochReport",
]
