"""Epoch-based phase tracking over the C-AMAT detector.

The paper adapts the architecture "phase by phase": lightweight counters
are read every epoch and the C2-Bound model re-runs on the new values.
:class:`EpochDetector` slices the access stream into fixed-length cycle
epochs, reporting one :class:`DetectorReport` delta per epoch, plus a
simple change detector (relative C-AMAT jump) that flags phase
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detector.analyzer_hw import CAMATDetector, DetectorReport
from repro.errors import InvalidParameterError

__all__ = ["EpochDetector", "EpochReport"]


@dataclass(frozen=True)
class EpochReport:
    """One epoch's delta measurements.

    Attributes
    ----------
    index:
        Epoch number (0-based).
    start_cycle:
        First cycle of the epoch.
    report:
        Detector counters accumulated *within* the epoch.
    phase_change:
        Whether the epoch's C-AMAT jumped by more than the configured
        threshold relative to the previous epoch.
    """

    index: int
    start_cycle: int
    report: DetectorReport
    phase_change: bool


class EpochDetector:
    """Fixed-cycle-epoch wrapper around :class:`CAMATDetector`.

    Parameters
    ----------
    epoch_cycles:
        Epoch length in cycles.
    change_threshold:
        Relative C-AMAT change flagged as a phase boundary.
    window:
        Reordering window passed to the underlying detector.
    """

    def __init__(self, epoch_cycles: int = 50000, *,
                 change_threshold: float = 0.25, window: int = 8192) -> None:
        if epoch_cycles < 1:
            raise InvalidParameterError(
                f"epoch length must be >= 1, got {epoch_cycles}")
        if change_threshold <= 0:
            raise InvalidParameterError(
                f"change threshold must be positive, got {change_threshold}")
        self.epoch_cycles = epoch_cycles
        self.change_threshold = change_threshold
        self._detector = CAMATDetector(window)
        self._epochs: list[EpochReport] = []
        self._boundary = epoch_cycles
        self._prev_snapshot: "DetectorReport | None" = None
        self._prev_camat: "float | None" = None

    def observe(self, start: int, hit_cycles: int, miss_penalty: int) -> None:
        """Record one access, closing epochs it passes."""
        while start >= self._boundary:
            self._close_epoch()
        self._detector.observe(start, hit_cycles, miss_penalty)

    def _close_epoch(self) -> None:
        # Align the counters with the boundary: every cycle of the epoch
        # is sealed before the snapshot.  This assumes events cross epoch
        # boundaries in start order (true for sorted traces and for the
        # simulator's near-chronological event loop); a violator is
        # rejected by the detector with a TraceError.
        self._detector._seal_to(min(self._boundary,
                                    max(self._detector.hcd.max_event_end,
                                        self._detector.mcd.max_event_end)))
        snapshot = self._detector.report(drain=False)
        delta = _delta(self._prev_snapshot, snapshot)
        camat = delta.camat if delta.accesses else 0.0
        change = False
        if self._prev_camat is not None and self._prev_camat > 0 and camat > 0:
            change = (abs(camat - self._prev_camat)
                      / self._prev_camat) > self.change_threshold
        self._epochs.append(EpochReport(
            index=len(self._epochs),
            start_cycle=self._boundary - self.epoch_cycles,
            report=delta,
            phase_change=change,
        ))
        if camat > 0:
            self._prev_camat = camat
        self._prev_snapshot = snapshot
        self._boundary += self.epoch_cycles

    def finish(self) -> list[EpochReport]:
        """Close the final epoch and return all epoch reports."""
        self._detector.drain()
        self._close_epoch()
        return list(self._epochs)

    @property
    def epochs(self) -> list[EpochReport]:
        """Epochs closed so far."""
        return list(self._epochs)


def _delta(prev: "DetectorReport | None",
           cur: DetectorReport) -> DetectorReport:
    """Counter difference between two cumulative snapshots."""
    if prev is None:
        return cur
    accesses = cur.accesses - prev.accesses
    misses = cur.misses - prev.misses
    pure = cur.pure_misses - prev.pure_misses
    hit_cycles = (cur.hit_time * cur.accesses
                  - prev.hit_time * prev.accesses)
    hit_active = _active(cur.hit_time, cur.accesses, cur.hit_concurrency) \
        - _active(prev.hit_time, prev.accesses, prev.hit_concurrency)
    pure_access_cycles = (cur.pure_avg_miss_penalty * cur.pure_misses
                          - prev.pure_avg_miss_penalty * prev.pure_misses)
    pure_wall = _wall(cur) - _wall(prev)
    penalty = (cur.total_miss_penalty_cycles
               - prev.total_miss_penalty_cycles)
    # A miss window can straddle an epoch boundary: its pure-miss
    # retirement lands in a later epoch than its access, so per-epoch
    # ratios are clamped to their valid ranges.
    return DetectorReport(
        accesses=accesses,
        misses=misses,
        pure_misses=pure,
        hit_time=hit_cycles / accesses if accesses else 0.0,
        hit_concurrency=(hit_cycles / hit_active) if hit_active > 0 else 1.0,
        pure_miss_rate=min(pure / accesses, 1.0) if accesses else 0.0,
        pure_avg_miss_penalty=(pure_access_cycles / pure) if pure else 0.0,
        miss_concurrency=(pure_access_cycles / pure_wall)
        if pure_wall > 0 else 1.0,
        total_miss_penalty_cycles=penalty,
    )


def _active(hit_time: float, accesses: int, c_h: float) -> float:
    total = hit_time * accesses
    return total / c_h if c_h > 0 else 0.0


def _wall(r: DetectorReport) -> float:
    total = r.pure_avg_miss_penalty * r.pure_misses
    return total / r.miss_concurrency if r.miss_concurrency > 0 else 0.0
