"""Hit Concurrency Detector (HCD).

Hardware model: a ring of per-cycle counters covering a bounded window of
recent cycles.  Each access reports its hit window ``[start, start +
hit_cycles)``; the HCD increments the covered cycle buckets.  The
coordinating :class:`repro.detector.analyzer_hw.CAMATDetector` *seals*
cycles as the window slides: a sealed bucket's count is folded into the
running totals (total hit access-cycles, hit-active cycles) and its value
— the cycle's hit concurrency — is handed to the MCD (paper Fig. 4:
"The HCD also notifies the MCD whether a current cycle has a hit
access").
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, TraceError

__all__ = ["HitConcurrencyDetector"]


class HitConcurrencyDetector:
    """Cycle-bucketed hit-activity counters.

    Parameters
    ----------
    window:
        Ring depth in cycles; events may arrive at most ``window`` cycles
        behind the newest sealed cycle.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 2:
            raise InvalidParameterError(f"window must be >= 2, got {window}")
        self.window = window
        self._ring = np.zeros(window, dtype=np.int64)
        self.sealed_until = 0
        self.total_hit_access_cycles = 0
        self.hit_active_cycles = 0
        self.accesses = 0
        self.max_event_end = 0

    def observe(self, start: int, hit_cycles: int) -> None:
        """Record one access's hit window."""
        if hit_cycles < 1:
            raise TraceError(f"hit window must be >= 1 cycle, got {hit_cycles}")
        if start < self.sealed_until:
            raise TraceError(
                f"event at cycle {start} arrived after that cycle was "
                f"sealed (window {self.window} too small)")
        end = start + hit_cycles
        if end - self.sealed_until > self.window:
            raise TraceError(
                f"hit window [{start}, {end}) exceeds the {self.window}-cycle "
                "detector ring; increase the window")
        self.accesses += 1
        self.total_hit_access_cycles += hit_cycles
        for c in range(start, end):
            self._ring[c % self.window] += 1
        self.max_event_end = max(self.max_event_end, end)

    def seal_cycle(self, cycle: int) -> int:
        """Fold one cycle into the totals; returns its hit concurrency.

        Must be called with consecutive cycle numbers starting at 0 (the
        coordinator guarantees this).
        """
        if cycle != self.sealed_until:
            raise TraceError(
                f"cycles must be sealed in order; expected "
                f"{self.sealed_until}, got {cycle}")
        slot = cycle % self.window
        count = int(self._ring[slot])
        self._ring[slot] = 0
        if count > 0:
            self.hit_active_cycles += 1
        self.sealed_until = cycle + 1
        return count

    @property
    def hit_concurrency(self) -> float:
        """Running ``C_H`` over sealed cycles."""
        if self.hit_active_cycles == 0:
            return 1.0
        return self.total_hit_access_cycles / self.hit_active_cycles

    @property
    def mean_hit_time(self) -> float:
        """Running ``H`` (mean hit cycles per access)."""
        if self.accesses == 0:
            return 0.0
        return self.total_hit_access_cycles / self.accesses
