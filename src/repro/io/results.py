"""Tabular experiment results: aligned text rendering + CSV export.

The environment has no plotting backend, so every figure reproduction
emits its series as a :class:`ResultTable` — the same rows/columns the
paper's axes show — renderable as aligned text and saved as CSV.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.errors import InvalidParameterError

__all__ = ["ResultTable"]


class ResultTable:
    """A column-ordered table of experiment results.

    Parameters
    ----------
    columns:
        Column names, in display order.
    title:
        Optional heading used by :meth:`render`.
    """

    def __init__(self, columns: Sequence[str], *, title: str = "") -> None:
        if not columns:
            raise InvalidParameterError("table needs at least one column")
        if len(set(columns)) != len(columns):
            raise InvalidParameterError(f"duplicate columns in {columns}")
        self.columns = tuple(columns)
        self.title = title
        self.rows: list[tuple] = []

    def add_row(self, *values, **named) -> None:
        """Append a row given positionally or by column name."""
        if values and named:
            raise InvalidParameterError(
                "pass values positionally or by name, not both")
        if named:
            missing = set(self.columns) - set(named)
            if missing:
                raise InvalidParameterError(f"missing columns {sorted(missing)}")
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise InvalidParameterError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """All values of one column."""
        try:
            idx = self.columns.index(name)
        except ValueError as exc:
            raise InvalidParameterError(f"no column {name!r}") from exc
        return [row[idx] for row in self.rows]

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            if value == 0 or 1e-3 <= abs(value) < 1e6:
                return f"{value:.4g}"
            return f"{value:.3e}"
        return str(value)

    def render(self) -> str:
        """Aligned-text rendering (the 'figure' for terminal output)."""
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
                  for i, c in enumerate(self.columns)]
        def line(parts: Sequence[str]) -> str:
            return "  ".join(p.rjust(w) for p, w in zip(parts, widths))
        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.columns))
        out.append(line(["-" * w for w in widths]))
        out.extend(line(r) for r in cells)
        return "\n".join(out)

    def save_csv(self, path: "str | Path") -> Path:
        """Write the table to a CSV file; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path

    def __len__(self) -> int:
        return len(self.rows)
