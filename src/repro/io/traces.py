"""Persist access traces as compressed NumPy archives.

Traces are the interface between workload generation, simulation and
analysis; saving them makes experiments replayable without regenerating.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.camat.trace import AccessTrace
from repro.errors import TraceError

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: AccessTrace, path: "str | Path") -> Path:
    """Write a trace to ``path`` (.npz); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        starts=trace.starts,
        hit_cycles=trace.hit_lengths,
        miss_penalties=trace.miss_penalties,
        addresses=trace.addresses,
    )
    # numpy appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz")


def load_trace(path: "str | Path") -> AccessTrace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version {version}")
        return AccessTrace.from_arrays(
            data["starts"], data["hit_cycles"], data["miss_penalties"],
            data["addresses"])
