"""JSON (de)serialization of application profiles.

Characterization is expensive (it runs the simulator); persisting the
measured :class:`repro.core.params.ApplicationProfile` lets the
characterize -> optimize pipeline span processes, exactly how the
paper's APS tool would be used in practice.

Scale functions serialize by type: power laws by exponent, FFT-like by
``m_ref``.  Custom ``GFunction`` subclasses are rejected with a clear
error rather than pickled (profiles are meant to be portable, diffable
JSON).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.params import ApplicationProfile
from repro.errors import InvalidParameterError
from repro.laws.gfunction import FFTLikeG, GFunction, PowerLawG

__all__ = ["profile_to_dict", "profile_from_dict", "save_profile",
           "load_profile"]

_FORMAT_VERSION = 1


def _g_to_dict(g: GFunction) -> dict:
    if isinstance(g, PowerLawG):
        return {"type": "power", "exponent": g.exponent, "name": g.name}
    if isinstance(g, FFTLikeG):
        return {"type": "fft", "m_ref": g.m_ref, "name": g.name}
    raise InvalidParameterError(
        f"cannot serialize scale function of type {type(g).__name__}; "
        "use PowerLawG or FFTLikeG for portable profiles")


def _g_from_dict(data: dict) -> GFunction:
    kind = data.get("type")
    if kind == "power":
        return PowerLawG(exponent=float(data["exponent"]),
                         name=str(data.get("name", "power")))
    if kind == "fft":
        return FFTLikeG(m_ref=float(data["m_ref"]))
    raise InvalidParameterError(f"unknown scale-function type {kind!r}")


def profile_to_dict(profile: ApplicationProfile) -> dict:
    """Portable dict form of a profile."""
    return {
        "version": _FORMAT_VERSION,
        "name": profile.name,
        "f_seq": profile.f_seq,
        "f_mem": profile.f_mem,
        "g": _g_to_dict(profile.g),
        "concurrency": profile.concurrency,
        "overlap_ratio": profile.overlap_ratio,
        "ic0": profile.ic0,
        "base_working_set_kib": profile.base_working_set_kib,
    }


def profile_from_dict(data: dict) -> ApplicationProfile:
    """Inverse of :func:`profile_to_dict` (validates on construction)."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise InvalidParameterError(
            f"unsupported profile format version {version!r}")
    return ApplicationProfile(
        name=str(data["name"]),
        f_seq=float(data["f_seq"]),
        f_mem=float(data["f_mem"]),
        g=_g_from_dict(data["g"]),
        concurrency=float(data["concurrency"]),
        overlap_ratio=float(data["overlap_ratio"]),
        ic0=float(data["ic0"]),
        base_working_set_kib=float(data["base_working_set_kib"]),
    )


def save_profile(profile: ApplicationProfile, path: "str | Path") -> Path:
    """Write a profile as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(profile_to_dict(profile), indent=2) + "\n")
    return path


def load_profile(path: "str | Path") -> ApplicationProfile:
    """Read a profile written by :func:`save_profile`."""
    path = Path(path)
    if not path.exists():
        raise InvalidParameterError(f"profile file {path} does not exist")
    return profile_from_dict(json.loads(path.read_text()))
