"""Result tables and trace persistence."""

from repro.io.results import ResultTable
from repro.io.traces import load_trace, save_trace
from repro.io.profiles import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

__all__ = [
    "ResultTable",
    "save_trace",
    "load_trace",
    "save_profile",
    "load_profile",
    "profile_to_dict",
    "profile_from_dict",
]
