"""Finite-difference Jacobians for nonlinear systems.

Central differences give second-order accuracy which matters for the poorly
scaled KKT systems produced by the Lagrangian in :mod:`repro.core.lagrange`
(area terms are O(1e2), CPI terms O(1e-1)).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["numeric_jacobian"]


def numeric_jacobian(
    func: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    *,
    rel_step: float = 1e-6,
    abs_step: float = 1e-8,
) -> np.ndarray:
    """Central-difference Jacobian of ``func`` at ``x``.

    Parameters
    ----------
    func:
        Maps an ``(n,)`` vector to an ``(m,)`` residual vector.
    x:
        Point of linearization, shape ``(n,)``.
    rel_step, abs_step:
        Per-component step is ``rel_step * |x_i| + abs_step``, which keeps
        the stencil well conditioned for components spanning several orders
        of magnitude.

    Returns
    -------
    numpy.ndarray
        Jacobian of shape ``(m, n)``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise InvalidParameterError(f"x must be 1-D, got shape {x.shape}")
    f0 = np.asarray(func(x), dtype=float)
    if f0.ndim != 1:
        raise InvalidParameterError(
            f"func must return a 1-D residual, got shape {f0.shape}")
    n = x.size
    m = f0.size
    jac = np.empty((m, n), dtype=float)
    for i in range(n):
        h = rel_step * abs(x[i]) + abs_step
        xp = x.copy()
        xm = x.copy()
        xp[i] += h
        xm[i] -= h
        fp = np.asarray(func(xp), dtype=float)
        fm = np.asarray(func(xm), dtype=float)
        jac[:, i] = (fp - fm) / (2.0 * h)
    return jac
