"""Damped Newton's method for nonlinear systems.

This is the solver the APS flow (paper Fig. 5, "the solution of the
nonlinear equations can be found using Newton's method") uses to find
stationary points of the Lagrangian in Eq. 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError
from repro.obs import get_registry
from repro.solvers.jacobian import numeric_jacobian
from repro.solvers.linesearch import backtracking_line_search

__all__ = ["NewtonResult", "newton_solve"]


def _publish(iterations: int, residual: float, converged: bool) -> None:
    """Record one solve's work in the registry (solver.newton.*)."""
    registry = get_registry()
    registry.counter("solver.newton.solves").inc()
    registry.counter("solver.newton.iterations").inc(iterations)
    if not converged:
        registry.counter("solver.newton.failures").inc()
    if np.isfinite(residual):
        registry.histogram("solver.newton.residual").observe(residual)


@dataclass(frozen=True)
class NewtonResult:
    """Outcome of a Newton solve.

    Attributes
    ----------
    x:
        Final iterate.
    residual_norm:
        Infinity norm of the residual at ``x``.
    iterations:
        Newton iterations performed.
    converged:
        Whether the tolerance was met.
    """

    x: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def newton_solve(
    func: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    *,
    jacobian: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    tol: float = 1e-10,
    max_iter: int = 100,
    damping: float = 0.0,
    raise_on_failure: bool = True,
) -> NewtonResult:
    """Solve ``func(x) = 0`` by damped Newton iteration.

    Parameters
    ----------
    func:
        Residual function mapping ``(n,)`` to ``(n,)``.
    x0:
        Initial guess.
    jacobian:
        Analytic Jacobian; falls back to central differences when omitted.
    tol:
        Convergence tolerance on the infinity norm of the residual.
    max_iter:
        Iteration budget.
    damping:
        Tikhonov damping added to ``J^T J`` when the Jacobian is singular
        or ill conditioned; ``0`` first attempts a plain solve.
    raise_on_failure:
        When ``True`` (default), raise :class:`ConvergenceError` if the
        budget is exhausted; otherwise return a result with
        ``converged=False``.

    Returns
    -------
    NewtonResult

    Raises
    ------
    ConvergenceError
        If the method fails to converge and ``raise_on_failure`` is set.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise InvalidParameterError(f"x0 must be 1-D, got shape {x.shape}")
    f = np.asarray(func(x), dtype=float)
    if f.shape != x.shape:
        raise InvalidParameterError(
            f"residual shape {f.shape} does not match x shape {x.shape}")
    norm2 = float(f @ f)
    for iteration in range(1, max_iter + 1):
        res_inf = float(np.max(np.abs(f))) if f.size else 0.0
        if res_inf <= tol:
            _publish(iteration - 1, res_inf, True)
            return NewtonResult(x=x, residual_norm=res_inf,
                                iterations=iteration - 1, converged=True)
        jac = (np.asarray(jacobian(x), dtype=float) if jacobian is not None
               else numeric_jacobian(func, x))
        step = _solve_step(jac, f, damping)
        x, f, norm2, _alpha = backtracking_line_search(func, x, step, norm2)
    res_inf = float(np.max(np.abs(f))) if f.size else 0.0
    if res_inf <= tol:
        _publish(max_iter, res_inf, True)
        return NewtonResult(x=x, residual_norm=res_inf,
                            iterations=max_iter, converged=True)
    _publish(max_iter, res_inf, False)
    if raise_on_failure:
        raise ConvergenceError(
            f"Newton did not converge in {max_iter} iterations "
            f"(residual {res_inf:.3e} > tol {tol:.3e})",
            iterations=max_iter, residual=res_inf)
    return NewtonResult(x=x, residual_norm=res_inf,
                        iterations=max_iter, converged=False)


def _solve_step(jac: np.ndarray, f: np.ndarray, damping: float) -> np.ndarray:
    """Compute the Newton step ``-J^{-1} f`` with regularized fallbacks."""
    try:
        step = np.linalg.solve(jac, -f)
        if np.all(np.isfinite(step)):
            return step
    except np.linalg.LinAlgError:
        pass
    # Levenberg-style fallback: (J^T J + mu I) s = -J^T f
    jtj = jac.T @ jac
    mu = max(damping, 1e-12) * (1.0 + float(np.trace(jtj)) / max(jtj.shape[0], 1))
    step = np.linalg.solve(jtj + mu * np.eye(jtj.shape[0]), -jac.T @ f)
    return step
