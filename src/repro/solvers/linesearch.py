"""Backtracking (Armijo) line search on the residual norm.

Used to globalize Newton's method: a full Newton step on the KKT system of
Eq. 13 can overshoot when the cache-area variables approach zero, so steps
are shortened until the merit function ``0.5 * ||F||^2`` decreases.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.obs import get_registry

__all__ = ["backtracking_line_search"]


def backtracking_line_search(
    func: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    step: np.ndarray,
    f0_norm2: float,
    *,
    shrink: float = 0.5,
    c1: float = 1e-4,
    max_backtracks: int = 30,
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Shrink ``step`` until the squared residual norm decreases.

    Parameters
    ----------
    func:
        Residual function.
    x:
        Current iterate.
    step:
        Proposed (Newton) step.
    f0_norm2:
        ``||func(x)||^2`` at the current iterate.
    shrink:
        Multiplicative backtracking factor in ``(0, 1)``.
    c1:
        Sufficient-decrease constant (Armijo).
    max_backtracks:
        Bound on the number of halvings.

    Returns
    -------
    tuple
        ``(x_new, f_new, f_new_norm2, alpha)``.  If no step length gives a
        decrease, the smallest trial step is returned (the caller's
        convergence test will then terminate the outer loop).
    """
    registry = get_registry()
    registry.counter("solver.linesearch.calls").inc()
    alpha = 1.0
    best = None
    for trial in range(max_backtracks):
        x_trial = x + alpha * step
        f_trial = np.asarray(func(x_trial), dtype=float)
        norm2 = float(f_trial @ f_trial)
        if np.isfinite(norm2) and norm2 <= (1.0 - c1 * alpha) * f0_norm2:
            if trial:
                registry.counter("solver.linesearch.backtracks").inc(trial)
            return x_trial, f_trial, norm2, alpha
        if best is None or (np.isfinite(norm2) and norm2 < best[2]):
            best = (x_trial, f_trial, norm2, alpha)
        alpha *= shrink
    registry.counter("solver.linesearch.backtracks").inc(max_backtracks - 1)
    assert best is not None
    return best
