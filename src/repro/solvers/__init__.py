"""Numerical solver substrate used by the C2-Bound optimizer.

The paper solves the Lagrangian stationarity system (Eq. 13) with Newton's
method ("We have implemented an efficient solver for the nonlinear equation
set").  This package provides that solver plus the scalar/grid minimizers
used to locate optima over the integer core count ``N``.

Public API
----------
- :func:`newton_solve` — damped Newton with numerical Jacobian fallback.
- :func:`numeric_jacobian` — central-difference Jacobian.
- :func:`backtracking_line_search` — Armijo line search on the residual norm.
- :func:`golden_section_minimize` — derivative-free scalar minimizer.
- :func:`brent_minimize` — Brent's method (parabolic + golden section).
- :func:`grid_minimize` / :func:`grid_refine_minimize` — coarse-to-fine
  bounded search used by APS to refine analytic solutions.
- :func:`integer_minimize` — exact minimizer over an integer interval.
"""

from repro.solvers.jacobian import numeric_jacobian
from repro.solvers.linesearch import backtracking_line_search
from repro.solvers.newton import NewtonResult, newton_solve
from repro.solvers.scalar import brent_minimize, golden_section_minimize
from repro.solvers.grid import (
    GridResult,
    grid_minimize,
    grid_refine_minimize,
    integer_minimize,
)

__all__ = [
    "NewtonResult",
    "newton_solve",
    "numeric_jacobian",
    "backtracking_line_search",
    "golden_section_minimize",
    "brent_minimize",
    "GridResult",
    "grid_minimize",
    "grid_refine_minimize",
    "integer_minimize",
]
