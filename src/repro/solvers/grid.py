"""Bounded grid search with iterative refinement.

The APS algorithm (paper Fig. 6, lines 14-16) simulates "the adjacent
regions in the design space nearby the solution presented by the analytical
model".  These helpers implement the coarse-to-fine pattern used both by
the analytic optimizer (over the integer core count) and by APS itself
(over discrete microarchitecture parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["GridResult", "grid_minimize", "grid_refine_minimize",
           "integer_minimize"]


@dataclass(frozen=True)
class GridResult:
    """Outcome of a grid search.

    Attributes
    ----------
    x:
        Argmin found.
    fun:
        Objective value at ``x``.
    evaluations:
        Number of objective evaluations performed (the "simulation count"
        when the objective is a simulator run).
    """

    x: float
    fun: float
    evaluations: int


def grid_minimize(
    func: Callable[[float], float],
    points: Sequence[float],
) -> GridResult:
    """Evaluate ``func`` on ``points`` and return the minimizer."""
    pts = np.asarray(list(points), dtype=float)
    if pts.size == 0:
        raise InvalidParameterError("grid_minimize needs at least one point")
    values = np.array([func(float(p)) for p in pts], dtype=float)
    finite = np.isfinite(values)
    if not finite.any():
        raise InvalidParameterError("objective is non-finite on entire grid")
    values = np.where(finite, values, np.inf)
    idx = int(np.argmin(values))
    return GridResult(x=float(pts[idx]), fun=float(values[idx]),
                      evaluations=int(pts.size))


def grid_refine_minimize(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    points_per_level: int = 16,
    levels: int = 4,
    log_scale: bool = False,
) -> GridResult:
    """Coarse-to-fine grid search on ``[lo, hi]``.

    Each level zooms into the bracket around the current best point and
    re-grids.  With ``log_scale`` the grid is geometric, which suits the
    core-count axis where the paper sweeps 1..1000.
    """
    if not (hi > lo):
        raise InvalidParameterError(f"need hi > lo, got [{lo}, {hi}]")
    if log_scale and lo <= 0:
        raise InvalidParameterError("log_scale requires lo > 0")
    if points_per_level < 3:
        raise InvalidParameterError("points_per_level must be >= 3")
    a, b = float(lo), float(hi)
    total_evals = 0
    best_x = a
    best_f = np.inf
    for _ in range(levels):
        if log_scale:
            pts = np.geomspace(a, b, points_per_level)
        else:
            pts = np.linspace(a, b, points_per_level)
        res = grid_minimize(func, pts)
        total_evals += res.evaluations
        if res.fun < best_f:
            best_x, best_f = res.x, res.fun
        # Zoom to one grid cell either side of the best point.
        idx = int(np.argmin(np.abs(pts - res.x)))
        a = float(pts[max(idx - 1, 0)])
        b = float(pts[min(idx + 1, len(pts) - 1)])
        if b <= a:
            break
    return GridResult(x=best_x, fun=best_f, evaluations=total_evals)


def integer_minimize(
    func: Callable[[int], float],
    lo: int,
    hi: int,
    *,
    exhaustive_below: int = 4096,
) -> GridResult:
    """Minimize over integers in ``[lo, hi]``.

    Small ranges are swept exhaustively; larger ranges use a geometric
    coarse pass followed by an exhaustive local sweep, which is exact for
    the unimodal objectives of Eq. 10 and a good heuristic otherwise.
    """
    if hi < lo:
        raise InvalidParameterError(f"need hi >= lo, got [{lo}, {hi}]")
    lo, hi = int(lo), int(hi)
    span = hi - lo + 1
    if span <= exhaustive_below:
        values = [(func(n), n) for n in range(lo, hi + 1)]
        fun, x = min(values, key=lambda t: (t[0], t[1]))
        return GridResult(x=float(x), fun=float(fun), evaluations=span)
    # Coarse geometric pass, then recursive geometric refinement of the
    # bracket around the winner until it is small enough to sweep.
    evals = 0
    seen: dict[int, float] = {}

    def eval_at(n: int) -> float:
        nonlocal evals
        if n not in seen:
            seen[n] = func(n)
            evals += 1
        return seen[n]

    cur_lo, cur_hi = lo, hi
    while cur_hi - cur_lo + 1 > 64:
        pts = np.unique(np.clip(np.round(
            np.geomspace(max(cur_lo, 1), cur_hi, 32)).astype(int),
            cur_lo, cur_hi))
        values = [(eval_at(int(n)), int(n)) for n in pts]
        _, x = min(values, key=lambda t: (t[0], t[1]))
        idx = int(np.searchsorted(pts, x))
        new_lo = int(pts[max(idx - 1, 0)])
        new_hi = int(pts[min(idx + 1, len(pts) - 1)])
        if (new_lo, new_hi) == (cur_lo, cur_hi):
            break
        cur_lo, cur_hi = new_lo, new_hi
    values = [(eval_at(n), n) for n in range(cur_lo, cur_hi + 1)]
    fun, x = min(values, key=lambda t: (t[0], t[1]))
    return GridResult(x=float(x), fun=float(fun), evaluations=evals)
