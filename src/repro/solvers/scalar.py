"""Derivative-free scalar minimizers.

The C2-Bound optimizer reduces the area allocation to a nested problem:
for each candidate core count ``N`` it minimizes the objective over the
cache-area split, then searches over ``N``.  The inner continuous searches
use golden-section / Brent; the outer integer search lives in
:mod:`repro.solvers.grid`.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import InvalidParameterError

__all__ = ["golden_section_minimize", "brent_minimize"]

_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/phi
_INVPHI2 = (3.0 - math.sqrt(5.0)) / 2.0  # 1/phi^2


def golden_section_minimize(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> tuple[float, float]:
    """Minimize a unimodal ``func`` on ``[lo, hi]`` by golden-section search.

    Returns ``(x_min, f_min)``.  For non-unimodal functions the result is a
    local minimum within the bracket.
    """
    if not (hi > lo):
        raise InvalidParameterError(f"need hi > lo, got [{lo}, {hi}]")
    a, b = float(lo), float(hi)
    h = b - a
    c = a + _INVPHI2 * h
    d = a + _INVPHI * h
    fc = func(c)
    fd = func(d)
    for _ in range(max_iter):
        if h <= tol:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            h = b - a
            c = a + _INVPHI2 * h
            fc = func(c)
        else:
            a, c, fc = c, d, fd
            h = b - a
            d = a + _INVPHI * h
            fd = func(d)
    if fc < fd:
        return c, fc
    return d, fd


def brent_minimize(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> tuple[float, float]:
    """Brent's method: golden-section with parabolic acceleration.

    Faster than pure golden section on the smooth objectives produced by
    Eq. 10; falls back to golden-section steps whenever the parabolic step
    is not trustworthy.
    """
    if not (hi > lo):
        raise InvalidParameterError(f"need hi > lo, got [{lo}, {hi}]")
    a, b = float(lo), float(hi)
    x = w = v = a + _INVPHI2 * (b - a)
    fx = fw = fv = func(x)
    d = e = b - a
    for _ in range(max_iter):
        m = 0.5 * (a + b)
        tol1 = tol * abs(x) + 1e-15
        tol2 = 2.0 * tol1
        if abs(x - m) <= tol2 - 0.5 * (b - a):
            break
        use_golden = True
        if abs(e) > tol1:
            # Parabolic fit through (x, fx), (w, fw), (v, fv).
            r = (x - w) * (fx - fv)
            q = (x - v) * (fx - fw)
            p = (x - v) * q - (x - w) * r
            q = 2.0 * (q - r)
            if q > 0.0:
                p = -p
            q = abs(q)
            e_old = e
            e = d
            if (abs(p) < abs(0.5 * q * e_old) and q * (a - x) < p < q * (b - x)):
                d = p / q
                u = x + d
                if (u - a) < tol2 or (b - u) < tol2:
                    d = tol1 if x < m else -tol1
                use_golden = False
        if use_golden:
            e = (b - x) if x < m else (a - x)
            d = _INVPHI2 * e
        u = x + (d if abs(d) >= tol1 else (tol1 if d > 0 else -tol1))
        fu = func(u)
        if fu <= fx:
            if u < x:
                b = x
            else:
                a = x
            v, w, x = w, x, u
            fv, fw, fx = fw, fx, fu
        else:
            if u < x:
                a = u
            else:
                b = u
            if fu <= fw or w == x:
                v, w = w, u
                fv, fw = fw, fu
            elif fu <= fv or v == x or v == w:
                v, fv = u, fu
    return x, fx
