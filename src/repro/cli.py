"""Command-line interface: regenerate any paper table/figure.

Usage::

    c2bound list
    c2bound fig1
    c2bound fig8 [--out results/]
    c2bound all --out results/
    c2bound fig12 --trace trace.jsonl --metrics-out metrics.json

Every run is observable: ``--trace`` writes a JSONL span/event trace
(schema in ``docs/OBSERVABILITY.md``), ``--metrics-out`` snapshots the
metrics registry (simulation budgets, per-layer cache counters, solver
work), ``--manifest`` records the run's provenance (config, seed, git
SHA, wall time, final metrics), and ``--quiet`` silences stdout while
leaving all of those outputs intact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.io.results import ResultTable
from repro.obs import (
    Reporter,
    RunManifest,
    configure_tracing,
    get_registry,
    package_version,
)

__all__ = ["main"]


def _fig8(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.3, quantity="WT")


def _fig9(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.9, quantity="WT")


def _fig10(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.3, quantity="throughput")


def _fig11(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.9, quantity="throughput")


def _fig12(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_fig12
    table, outcome = run_fig12()
    reporter.note(f"APS narrowed {outcome.space_size:,} points to "
                  f"{outcome.aps_sims} simulations")
    return table


def _fig1(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_fig1
    return run_fig1()


def _table1(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_table1
    return run_table1()


def _fig7(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_fig7
    return run_fig7()


def _fig13(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_fig13
    return run_fig13()


def _capacity(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_capacity_bound
    return run_capacity_bound()


def _aps_accuracy(reporter: Reporter) -> ResultTable:
    from repro.experiments import run_aps_accuracy
    table, _ = run_aps_accuracy()
    return table


def _calibration(reporter: Reporter) -> ResultTable:
    from repro.experiments.calibration import run_calibration
    table, rho = run_calibration()
    reporter.note(
        f"fitted-vs-simulated miss-rate rank correlation: {rho:.3f}",
        metric="experiment.calibration.rank_correlation", value=rho)
    return table


def _mechanisms(reporter: Reporter) -> ResultTable:
    from repro.experiments.mechanisms import run_mechanism_sweep
    return run_mechanism_sweep()


def _validation(reporter: Reporter) -> ResultTable:
    from repro.experiments.validation import run_model_validation
    table, rho = run_model_validation()
    reporter.note(
        f"Spearman rank correlation: {rho:.3f}",
        metric="experiment.validation.rank_correlation", value=rho)
    return table


def _ablation_factors(reporter: Reporter) -> ResultTable:
    from repro.experiments.ablation import run_factor_ablation
    return run_factor_ablation()


def _ablation_miss_curve(reporter: Reporter) -> ResultTable:
    from repro.experiments.ablation import run_miss_curve_ablation
    return run_miss_curve_ablation()


EXPERIMENTS: dict[str, tuple[str, Callable[[Reporter], ResultTable]]] = {
    "fig1": ("C-AMAT worked example (exact match)", _fig1),
    "table1": ("g(N) factors of Table I", _table1),
    "fig7": ("core allocation for multiple tasks", _fig7),
    "fig8": ("W and T vs N, f_mem=0.3", _fig8),
    "fig9": ("W and T vs N, f_mem=0.9", _fig9),
    "fig10": ("throughput W/T vs N, f_mem=0.3", _fig10),
    "fig11": ("throughput W/T vs N, f_mem=0.9", _fig11),
    "fig12": ("simulation counts: APS vs ANN vs full sweep", _fig12),
    "fig13": ("APC per memory layer", _fig13),
    "capacity": ("Section V capacity-bounded problem size", _capacity),
    "aps-accuracy": ("Section IV APS error vs full sweep", _aps_accuracy),
    "validation": ("analytic model vs simulator rank agreement",
                   _validation),
    "mechanisms": ("concurrency mechanisms vs C-AMAT parameters",
                   _mechanisms),
    "calibration": ("fitted miss curves vs simulation", _calibration),
    "ablation-factors": ("ablate the concurrency/capacity factors",
                         _ablation_factors),
    "ablation-miss-curve": ("ablate the miss-curve exponent",
                            _ablation_miss_curve),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="c2bound",
        description="Regenerate tables/figures of the C2-Bound paper "
                    "(Liu & Sun, SC'15).")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    parser.add_argument("experiment",
                        help="experiment id, 'list', 'all', "
                             "'characterize', 'cache', 'lint', "
                             "'report', 'diff', 'tail', or 'serve'")
    parser.add_argument("subcommand", nargs="?", default=None,
                        help="subcommand for 'cache' (stats | clear)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for CSV output (optional); also "
                             "receives the run manifest")
    parser.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="write a JSONL span/event trace to FILE")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        metavar="FILE",
                        help="write a JSON metrics-registry snapshot to FILE")
    parser.add_argument("--manifest", type=Path, default=None,
                        metavar="FILE",
                        help="write a run manifest (config, seed, git SHA, "
                             "wall time, metrics) to FILE")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress stdout (files are still written)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="process-pool workers for parallel DSE "
                             "evaluation (default 1 = inline)")
    parser.add_argument("--batch-size", type=int, default=None, metavar="B",
                        help="design points per batched evaluator call "
                             "(default 2048)")
    parser.add_argument("--fabric", action="store_true",
                        help="schedule pooled DSE evaluation through the "
                             "sharded work-stealing sweep fabric (and use "
                             "the per-shard checkpoint ledger with "
                             "--checkpoint); results are bit-identical "
                             "either way")
    steal = parser.add_mutually_exclusive_group()
    steal.add_argument("--steal", dest="steal", action="store_true",
                       default=True,
                       help="allow idle fabric workers to steal backlog "
                            "from stragglers (default)")
    steal.add_argument("--no-steal", dest="steal", action="store_false",
                       help="pin every fabric worker to its own shard "
                            "range (no stealing)")
    parser.add_argument("--checkpoint", type=Path, default=None,
                        metavar="DIR",
                        help="journal every charged DSE evaluation into DIR "
                             "(one JSONL ledger per search method)")
    parser.add_argument("--resume", action="store_true",
                        help="restore existing journals in --checkpoint DIR "
                             "before running (a resumed run is bit-identical "
                             "to an uninterrupted one)")
    parser.add_argument("--sim-cache", type=Path, default=None, metavar="DIR",
                        help="persistent simulation-result cache directory "
                             "(default: $C2BOUND_SIM_CACHE when set)")
    parser.add_argument("--no-sim-cache", action="store_true",
                        help="disable the persistent simulation cache "
                             "(overrides --sim-cache and the environment)")
    parser.add_argument("--workload", default="fluidanimate",
                        help="workload name for 'characterize' "
                             "(a PARSEC-like profile)")
    parser.add_argument("--n-ops", type=int, default=8000,
                        help="memory operations for 'characterize'")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for the ``c2bound`` console script."""
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw and raw[0] == "lint":
        # The lint subcommand has its own flag set; dispatch before the
        # experiment parser can reject them.
        from repro.analysis.cli import main as lint_main
        return lint_main(raw[1:])
    if raw and raw[0] in ("report", "diff", "tail"):
        # Run-analysis subcommands likewise own their flags.
        from repro.obs.report import cli_main as analysis_main
        return analysis_main(raw)
    if raw and raw[0] == "serve":
        # The job server owns its flag set too (see docs/SERVICE.md).
        from repro.service.cli import main as serve_main
        return serve_main(raw[1:])
    args = _build_parser().parse_args(raw)
    reporter = Reporter(quiet=args.quiet)

    if args.experiment == "list":
        if not args.quiet:
            for key, (desc, _fn) in EXPERIMENTS.items():
                print(f"{key:20s} {desc}")
            print(f"{'characterize':20s} measure a workload's C2-Bound "
                  "profile (--workload, --n-ops)")
        return 0

    sim_store = _configure_sim_cache(args)
    if args.experiment == "cache":
        return _cache_command(args, reporter, sim_store)

    # Fresh accounting per invocation: tracing always aggregates (for
    # the timing summary); the JSONL sink exists only with --trace.
    registry = get_registry()
    registry.reset()
    tracer = configure_tracing(args.trace, enabled=True)
    from repro.dse.batch import set_batch_defaults
    defaults = set_batch_defaults(batch_size=args.batch_size,
                                  workers=args.workers,
                                  fabric=args.fabric, steal=args.steal)
    run_id, parent_run_ids = _configure_checkpoints(args, reporter)
    if run_id is None:
        return 2
    manifest = RunManifest(
        args.experiment,
        config={"out": str(args.out) if args.out else None,
                "trace": str(args.trace) if args.trace else None,
                "workload": args.workload, "n_ops": args.n_ops,
                "workers": defaults.workers,
                "batch_size": defaults.batch_size,
                "fabric": defaults.fabric,
                "steal": defaults.steal,
                "sim_cache": str(sim_store.root) if sim_store else None,
                "checkpoint": (str(args.checkpoint)
                               if args.checkpoint else None),
                "resume": bool(args.resume)},
        argv=list(sys.argv[1:]) if argv is None else list(argv),
        run_id=run_id)
    if args.checkpoint is not None:
        manifest.set_lineage(resumed=bool(args.resume),
                             parent_run_ids=parent_run_ids)
    try:
        if args.experiment == "characterize":
            status = _characterize_command(args, reporter)
        else:
            status = _run_experiments(args, reporter, tracer)
        if status == 0:
            _write_outputs(args, reporter, tracer, manifest, registry)
    finally:
        # Close the sink and restore the default disabled tracer so
        # library use after main() pays no tracing cost.
        tracer.close()
        from repro.obs import disable_tracing
        disable_tracing()
    return status


def _configure_checkpoints(args, reporter: Reporter):
    """Install the process-wide checkpoint wiring from the CLI flags.

    Returns ``(run_id, parent_run_ids)``; a ``None`` run id signals a
    usage error (``--resume`` without ``--checkpoint``).  Parent run
    ids are read from the journals about to be restored — the lineage
    linking a resumed run to the interrupted run(s) that wrote them.
    """
    from repro.resilience.checkpoint import (
        new_run_id,
        read_journal_headers,
        set_checkpoint_defaults,
    )

    if args.checkpoint is None:
        if args.resume:
            reporter.error("--resume requires --checkpoint DIR")
            return None, []
        set_checkpoint_defaults(directory=None)
        return new_run_id(), []
    run_id = new_run_id()
    parents: list[str] = []
    if args.resume:
        parents = sorted({h["run_id"] for h in
                          read_journal_headers(args.checkpoint)
                          if h.get("run_id")})
    set_checkpoint_defaults(directory=args.checkpoint, resume=args.resume,
                            run_id=run_id, sharded=bool(args.fabric))
    return run_id, parents


def _configure_sim_cache(args):
    """Install the process-wide simulation store from the CLI flags.

    Returns the active store (``None`` when caching is off).  Flag
    precedence: ``--no-sim-cache`` > ``--sim-cache DIR`` >
    ``$C2BOUND_SIM_CACHE`` > off.
    """
    from repro.sim.cache_store import get_default_store, set_default_store

    if args.no_sim_cache:
        return set_default_store(None)
    if args.sim_cache is not None:
        return set_default_store(args.sim_cache)
    return get_default_store()


def _cache_command(args, reporter: Reporter, store) -> int:
    """``c2bound cache stats|clear`` — inspect or empty the store."""
    if args.subcommand not in ("stats", "clear"):
        reporter.error("cache needs a subcommand: "
                       "'c2bound cache stats' or 'c2bound cache clear'")
        return 2
    if store is None:
        reporter.error("no simulation cache configured; pass --sim-cache "
                       "DIR or set $C2BOUND_SIM_CACHE")
        return 2
    if args.subcommand == "clear":
        removed = store.clear()
        reporter.note(f"removed {removed} cached simulation(s) "
                      f"from {store.root}")
        return 0
    table = ResultTable(["field", "value"], title="Simulation cache")
    for field, value in store.stats().items():
        table.add_row(field, value)
    reporter.table(table, trailing_blank=False)
    return 0


def _run_experiments(args, reporter: Reporter, tracer) -> int:
    keys = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        reporter.error(f"unknown experiment(s): {', '.join(unknown)}; "
                       f"try 'c2bound list'")
        return 2
    for key in keys:
        _desc, fn = EXPERIMENTS[key]
        with tracer.span(f"experiment.{key}"):
            table = fn(reporter)
        reporter.table(table)
        if args.out is not None:
            path = table.save_csv(args.out / f"{key}.csv")
            reporter.saved(path)
    return 0


def _write_outputs(args, reporter: Reporter, tracer, manifest,
                   registry) -> None:
    """End-of-run artifacts: timing summary, metrics, manifest."""
    timing = tracer.timing_table()
    if timing is not None:
        reporter.table(timing, trailing_blank=False)
    if args.metrics_out is not None:
        reporter.saved(registry.write_json(args.metrics_out))
    _finish_lineage(args, manifest, registry)
    manifest_path = args.manifest
    if manifest_path is None and args.out is not None:
        manifest_path = args.out / f"manifest_{args.experiment}.json"
    if manifest_path is not None:
        reporter.saved(manifest.write(manifest_path,
                                      metrics=registry.snapshot()))


def _finish_lineage(args, manifest, registry) -> None:
    """Complete the manifest's resume/failover lineage after the run.

    Records, per checkpoint journal, the creating run's id and the
    ledger's content hash, plus this run's retry/failover counters —
    the audit trail for "what did this run survive, and what did it
    restart from".
    """
    counters = registry.snapshot().get("counters", {})
    failover = {name: counters[name] for name in sorted(counters)
                if name.startswith("resilience.")}
    if failover:
        manifest.set_lineage(failover=failover)
    if args.checkpoint is None:
        return
    from repro.resilience.checkpoint import (
        checkpoint_hash,
        read_journal_headers,
    )
    manifest.set_lineage(checkpoints=[
        {"path": h["path"], "run_id": h.get("run_id"),
         "method": h.get("method"), "sha256": checkpoint_hash(h["path"])}
        for h in read_journal_headers(args.checkpoint)])


def _characterize_command(args, reporter: Reporter) -> int:
    """Measure a workload's profile and print the model inputs."""
    from repro.characterize import characterize
    from repro.workloads.parsec import PARSEC_LIKE, parsec_like

    if args.workload not in PARSEC_LIKE:
        reporter.error(f"unknown workload {args.workload!r}; "
                       f"available: {', '.join(sorted(PARSEC_LIKE))}")
        return 2
    workload = parsec_like(args.workload, n_ops=args.n_ops)
    report = characterize(workload)
    profile = report.profile
    table = ResultTable(["parameter", "value"],
                        title=f"Characterization: {args.workload}")
    table.add_row("f_mem", profile.f_mem)
    table.add_row("concurrency C", profile.concurrency)
    table.add_row("C-AMAT (cycles/access)", report.mean_camat)
    table.add_row("working set (KiB)", report.working_set_kib)
    table.add_row("instructions", profile.ic0)
    table.add_row("g(N) regime", profile.g.regime())
    reporter.table(table, trailing_blank=False)
    if args.out is not None:
        path = table.save_csv(args.out / f"characterize_{args.workload}.csv")
        reporter.saved(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
