"""Command-line interface: regenerate any paper table/figure.

Usage::

    c2bound list
    c2bound fig1
    c2bound fig8 [--out results/]
    c2bound all --out results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.io.results import ResultTable

__all__ = ["main"]


def _fig8() -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.3, quantity="WT")


def _fig9() -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.9, quantity="WT")


def _fig10() -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.3, quantity="throughput")


def _fig11() -> ResultTable:
    from repro.experiments import run_scaling_figure
    return run_scaling_figure(f_mem=0.9, quantity="throughput")


def _fig12() -> ResultTable:
    from repro.experiments import run_fig12
    table, _ = run_fig12()
    return table


def _fig1() -> ResultTable:
    from repro.experiments import run_fig1
    return run_fig1()


def _table1() -> ResultTable:
    from repro.experiments import run_table1
    return run_table1()


def _fig7() -> ResultTable:
    from repro.experiments import run_fig7
    return run_fig7()


def _fig13() -> ResultTable:
    from repro.experiments import run_fig13
    return run_fig13()


def _capacity() -> ResultTable:
    from repro.experiments import run_capacity_bound
    return run_capacity_bound()


def _aps_accuracy() -> ResultTable:
    from repro.experiments import run_aps_accuracy
    table, _ = run_aps_accuracy()
    return table


def _calibration() -> ResultTable:
    from repro.experiments.calibration import run_calibration
    table, rho = run_calibration()
    print(f"[fitted-vs-simulated miss-rate rank correlation: {rho:.3f}]")
    return table


def _mechanisms() -> ResultTable:
    from repro.experiments.mechanisms import run_mechanism_sweep
    return run_mechanism_sweep()


def _validation() -> ResultTable:
    from repro.experiments.validation import run_model_validation
    table, rho = run_model_validation()
    print(f"[Spearman rank correlation: {rho:.3f}]")
    return table


def _ablation_factors() -> ResultTable:
    from repro.experiments.ablation import run_factor_ablation
    return run_factor_ablation()


def _ablation_miss_curve() -> ResultTable:
    from repro.experiments.ablation import run_miss_curve_ablation
    return run_miss_curve_ablation()


EXPERIMENTS: dict[str, tuple[str, Callable[[], ResultTable]]] = {
    "fig1": ("C-AMAT worked example (exact match)", _fig1),
    "table1": ("g(N) factors of Table I", _table1),
    "fig7": ("core allocation for multiple tasks", _fig7),
    "fig8": ("W and T vs N, f_mem=0.3", _fig8),
    "fig9": ("W and T vs N, f_mem=0.9", _fig9),
    "fig10": ("throughput W/T vs N, f_mem=0.3", _fig10),
    "fig11": ("throughput W/T vs N, f_mem=0.9", _fig11),
    "fig12": ("simulation counts: APS vs ANN vs full sweep", _fig12),
    "fig13": ("APC per memory layer", _fig13),
    "capacity": ("Section V capacity-bounded problem size", _capacity),
    "aps-accuracy": ("Section IV APS error vs full sweep", _aps_accuracy),
    "validation": ("analytic model vs simulator rank agreement",
                   _validation),
    "mechanisms": ("concurrency mechanisms vs C-AMAT parameters",
                   _mechanisms),
    "calibration": ("fitted miss curves vs simulation", _calibration),
    "ablation-factors": ("ablate the concurrency/capacity factors",
                         _ablation_factors),
    "ablation-miss-curve": ("ablate the miss-curve exponent",
                            _ablation_miss_curve),
}


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for the ``c2bound`` console script."""
    parser = argparse.ArgumentParser(
        prog="c2bound",
        description="Regenerate tables/figures of the C2-Bound paper "
                    "(Liu & Sun, SC'15).")
    parser.add_argument("experiment",
                        help="experiment id, 'list', 'all', or "
                             "'characterize'")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for CSV output (optional)")
    parser.add_argument("--workload", default="fluidanimate",
                        help="workload name for 'characterize' "
                             "(a PARSEC-like profile)")
    parser.add_argument("--n-ops", type=int, default=8000,
                        help="memory operations for 'characterize'")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, (desc, _fn) in EXPERIMENTS.items():
            print(f"{key:20s} {desc}")
        print(f"{'characterize':20s} measure a workload's C2-Bound profile "
              "(--workload, --n-ops)")
        return 0

    if args.experiment == "characterize":
        return _characterize_command(args)

    keys = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'c2bound list'", file=sys.stderr)
        return 2
    for key in keys:
        _desc, fn = EXPERIMENTS[key]
        table = fn()
        print(table.render())
        print()
        if args.out is not None:
            path = table.save_csv(args.out / f"{key}.csv")
            print(f"[saved {path}]")
    return 0


def _characterize_command(args) -> int:
    """Measure a workload's profile and print the model inputs."""
    from repro.characterize import characterize
    from repro.workloads.parsec import PARSEC_LIKE, parsec_like

    if args.workload not in PARSEC_LIKE:
        print(f"unknown workload {args.workload!r}; "
              f"available: {', '.join(sorted(PARSEC_LIKE))}",
              file=sys.stderr)
        return 2
    workload = parsec_like(args.workload, n_ops=args.n_ops)
    report = characterize(workload)
    profile = report.profile
    table = ResultTable(["parameter", "value"],
                        title=f"Characterization: {args.workload}")
    table.add_row("f_mem", profile.f_mem)
    table.add_row("concurrency C", profile.concurrency)
    table.add_row("C-AMAT (cycles/access)", report.mean_camat)
    table.add_row("working set (KiB)", report.working_set_kib)
    table.add_row("instructions", profile.ic0)
    table.add_row("g(N) regime", profile.g.regime())
    print(table.render())
    if args.out is not None:
        path = table.save_csv(args.out / f"characterize_{args.workload}.csv")
        print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
