"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConvergenceError",
    "InvalidParameterError",
    "TraceError",
    "SimulationError",
    "DesignSpaceError",
    "ObservabilityError",
    "AnalysisError",
    "ResilienceError",
    "TransientError",
    "FatalError",
    "WorkerCrashError",
    "EvaluationTimeoutError",
    "RetryExhaustedError",
    "DeadlineExceededError",
    "CheckpointError",
    "ServiceError",
    "AdmissionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the C2-Bound library."""


class ConvergenceError(ReproError):
    """A numerical solver failed to converge within its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Norm of the final residual (``nan`` if unavailable).
    """

    def __init__(self, message: str, *, iterations: int = 0,
                 residual: float = float("nan")) -> None:
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)


class InvalidParameterError(ReproError, ValueError):
    """A model or configuration parameter is out of its valid domain."""


class TraceError(ReproError, ValueError):
    """A memory access trace is malformed or internally inconsistent."""


class SimulationError(ReproError):
    """The CMP simulator reached an inconsistent state."""


class DesignSpaceError(ReproError, ValueError):
    """A design-space definition or query is invalid."""


class ObservabilityError(ReproError, ValueError):
    """A metrics-registry or tracing operation is invalid."""


class AnalysisError(ReproError, ValueError):
    """A static-analysis (``c2bound lint``) invocation is invalid."""


class ResilienceError(ReproError):
    """Base class of the fault-tolerance taxonomy (:mod:`repro.resilience`).

    Failures during long-horizon DSE runs split into two kinds that
    retry logic must treat differently, so the split is encoded in the
    type system rather than in string matching:

    - :class:`TransientError` — safe to retry (a crashed pool worker, a
      hung simulation, a glitching filesystem);
    - :class:`FatalError` — retrying cannot help (a poisoned
      configuration, an exhausted retry budget, corrupted state).
    """


class TransientError(ResilienceError):
    """A failure that a deterministic retry may resolve."""


class FatalError(ResilienceError):
    """A failure that retrying cannot fix; propagate immediately."""


class WorkerCrashError(TransientError):
    """A process-pool worker died mid-task (``BrokenProcessPool``).

    Attributes
    ----------
    chunk_index:
        Index of the work chunk whose future observed the crash
        (``-1`` when unattributable).
    """

    def __init__(self, message: str, *, chunk_index: int = -1) -> None:
        super().__init__(message)
        self.chunk_index = int(chunk_index)


class EvaluationTimeoutError(TransientError):
    """A work chunk exceeded its deadline.

    Attributes
    ----------
    timeout_s:
        The deadline that was exceeded (``nan`` if unknown).
    """

    def __init__(self, message: str, *, timeout_s: float = float("nan")) -> None:
        super().__init__(message)
        self.timeout_s = float(timeout_s)


class RetryExhaustedError(FatalError):
    """A retry policy spent every attempt without success.

    Attributes
    ----------
    attempts:
        Number of attempts performed.
    last_error:
        The exception raised by the final attempt (also chained as
        ``__cause__``).
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 last_error: "BaseException | None" = None) -> None:
        super().__init__(message)
        self.attempts = int(attempts)
        self.last_error = last_error


class DeadlineExceededError(FatalError):
    """A job's overall time budget ran out before the work completed.

    Attributes
    ----------
    timeout_s:
        The total budget that expired (``nan`` if unknown).
    """

    def __init__(self, message: str, *, timeout_s: float = float("nan")) -> None:
        super().__init__(message)
        self.timeout_s = float(timeout_s)


class CheckpointError(ResilienceError, ValueError):
    """A checkpoint journal is malformed, mismatched, or unusable."""


class ServiceError(ReproError):
    """Base class for job-server (:mod:`repro.service`) failures."""


class AdmissionError(ServiceError):
    """A job was refused at the admission gate (quota or backpressure).

    Attributes
    ----------
    retry_after_s:
        Suggested client back-off before resubmitting, in seconds.
    reason:
        Machine-readable cause (``"queue_full"``, ``"tenant_quota"``,
        ``"memory_watermark"``, ...).
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0,
                 reason: str = "queue_full") -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.reason = str(reason)
