"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConvergenceError",
    "InvalidParameterError",
    "TraceError",
    "SimulationError",
    "DesignSpaceError",
    "ObservabilityError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the C2-Bound library."""


class ConvergenceError(ReproError):
    """A numerical solver failed to converge within its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Norm of the final residual (``nan`` if unavailable).
    """

    def __init__(self, message: str, *, iterations: int = 0,
                 residual: float = float("nan")) -> None:
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)


class InvalidParameterError(ReproError, ValueError):
    """A model or configuration parameter is out of its valid domain."""


class TraceError(ReproError, ValueError):
    """A memory access trace is malformed or internally inconsistent."""


class SimulationError(ReproError):
    """The CMP simulator reached an inconsistent state."""


class DesignSpaceError(ReproError, ValueError):
    """A design-space definition or query is invalid."""


class ObservabilityError(ReproError, ValueError):
    """A metrics-registry or tracing operation is invalid."""


class AnalysisError(ReproError, ValueError):
    """A static-analysis (``c2bound lint``) invocation is invalid."""
