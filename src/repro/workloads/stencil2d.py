"""2-D five-point Jacobi stencil (the paper's stencil class, 2-D form).

``iterations`` sweeps over an ``n x n`` grid; each interior point loads
its four neighbours and itself and stores the result to the second
buffer.  Like the 1-D variant, ``W = O(n^2)`` per sweep over
``M = O(n^2)`` memory, so ``g(N) = N`` — but the 2-D walk adds the
row-stride reuse pattern whose cache behaviour differs sharply between
capacities that do and do not hold ``2-3`` grid rows, a classic
capacity-cliff probe for the miss-curve machinery.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG
from repro.workloads.base import Workload, WorkloadCharacteristics

__all__ = ["Stencil2D"]


class Stencil2D(Workload):
    """Five-point Jacobi stencil on an ``n x n`` grid.

    Parameters
    ----------
    n:
        Grid edge, ``>= 3``.
    iterations:
        Number of sweeps.
    element_bytes:
        Bytes per grid element.
    f_mem, f_seq:
        Analytic profile knobs.
    """

    name = "stencil2d"

    def __init__(self, n: int = 96, iterations: int = 2,
                 element_bytes: int = 8, f_mem: float = 0.5,
                 f_seq: float = 0.01) -> None:
        if n < 3:
            raise InvalidParameterError(f"n must be >= 3, got {n}")
        if iterations < 1:
            raise InvalidParameterError(
                f"iterations must be >= 1, got {iterations}")
        if element_bytes < 1:
            raise InvalidParameterError(
                f"element size must be >= 1, got {element_bytes}")
        self.n = n
        self.iterations = iterations
        self.element_bytes = element_bytes
        self.f_mem = f_mem
        self.f_seq = f_seq

    def characteristics(self) -> WorkloadCharacteristics:
        footprint = 2 * self.n * self.n * self.element_bytes / 1024.0
        return WorkloadCharacteristics(
            f_seq=self.f_seq, f_mem=self.f_mem,
            g=PowerLawG(1.0, name="stencil2d"),
            working_set_kib=footprint)

    def write_mask(self, n_ops: int) -> np.ndarray:
        """Every sixth access is the destination store."""
        idx = np.arange(n_ops)
        return idx % 6 == 5

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        n, eb = self.n, self.element_bytes
        src_base = 0
        dst_base = n * n * eb
        ii, jj = np.meshgrid(np.arange(1, n - 1), np.arange(1, n - 1),
                             indexing="ij")
        i = ii.ravel()
        j = jj.ravel()
        center = (i * n + j) * eb
        north = ((i - 1) * n + j) * eb
        south = ((i + 1) * n + j) * eb
        west = (i * n + (j - 1)) * eb
        east = (i * n + (j + 1)) * eb
        sweep = np.empty(6 * center.size, dtype=np.int64)
        sweep[0::6] = src_base + north
        sweep[1::6] = src_base + west
        sweep[2::6] = src_base + center
        sweep[3::6] = src_base + east
        sweep[4::6] = src_base + south
        sweep[5::6] = dst_base + center
        chunks = []
        for it in range(self.iterations):
            if it % 2 == 0:
                chunks.append(sweep)
            else:
                swapped = sweep.copy()
                src_mask = np.ones(sweep.size, dtype=bool)
                src_mask[5::6] = False
                swapped[src_mask] += dst_base
                swapped[~src_mask] -= dst_base
                chunks.append(swapped)
        return np.concatenate(chunks)
