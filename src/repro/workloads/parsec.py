"""PARSEC / SPLASH-2-like synthetic suite.

The paper characterizes SPLASH-2 and PARSEC benchmarks (10B instructions
via SimPoint) and runs its fluidanimate case study on PARSEC.  Those
traces are not redistributable, so this module defines *named synthetic
profiles* whose structural parameters follow the published
characterizations (working-set class, memory intensity, locality mix,
parallelism):

- ``fluidanimate`` — large working set, moderate memory intensity, low
  ``f_seq`` (the paper's DSE case study).
- ``blackscholes`` — small working set, compute-bound.
- ``canneal`` — huge working set, pointer-chasing-like random accesses.
- ``streamcluster`` — streaming dominated.
- ``barnes`` / ``ocean`` — SPLASH-2-style mid-size scientific codes.

Each profile exercises a distinct corner of the (capacity, concurrency)
plane, which is all the C2-Bound experiments require of the originals.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG
from repro.workloads.synthetic import SyntheticWorkload

__all__ = ["PARSEC_LIKE", "parsec_like"]


def _profiles() -> dict[str, SyntheticWorkload]:
    return {
        "fluidanimate": SyntheticWorkload(
            name="fluidanimate", n_ops=20000, working_set_kib=32 * 1024,
            hot_fraction=0.62, hot_set_kib=16.0,
            warm_fraction=0.22, warm_set_kib=192.0, stream_fraction=0.12,
            burst_length=4.0, f_mem=0.35, f_seq=0.02,
            g=PowerLawG(1.0, name="fluidanimate")),
        "blackscholes": SyntheticWorkload(
            name="blackscholes", n_ops=20000, working_set_kib=512.0,
            hot_fraction=0.80, hot_set_kib=12.0,
            warm_fraction=0.14, warm_set_kib=128.0, stream_fraction=0.05,
            burst_length=2.0, f_mem=0.15, f_seq=0.01,
            g=PowerLawG(1.0, name="blackscholes")),
        "canneal": SyntheticWorkload(
            name="canneal", n_ops=20000, working_set_kib=128 * 1024,
            hot_fraction=0.45, hot_set_kib=12.0,
            warm_fraction=0.18, warm_set_kib=256.0, stream_fraction=0.04,
            burst_length=1.5, f_mem=0.45, f_seq=0.05,
            g=PowerLawG(1.0, name="canneal")),
        "streamcluster": SyntheticWorkload(
            name="streamcluster", n_ops=20000, working_set_kib=16 * 1024,
            hot_fraction=0.45, hot_set_kib=8.0,
            warm_fraction=0.15, warm_set_kib=128.0, stream_fraction=0.36,
            burst_length=6.0, f_mem=0.4, f_seq=0.02,
            g=PowerLawG(1.0, name="streamcluster")),
        "barnes": SyntheticWorkload(
            name="barnes", n_ops=20000, working_set_kib=4 * 1024,
            hot_fraction=0.70, hot_set_kib=20.0,
            warm_fraction=0.18, warm_set_kib=256.0, stream_fraction=0.09,
            burst_length=3.0, f_mem=0.3, f_seq=0.03,
            g=PowerLawG(1.5, name="barnes")),
        "ocean": SyntheticWorkload(
            name="ocean", n_ops=20000, working_set_kib=8 * 1024,
            hot_fraction=0.55, hot_set_kib=16.0,
            warm_fraction=0.18, warm_set_kib=192.0, stream_fraction=0.23,
            burst_length=5.0, f_mem=0.45, f_seq=0.02,
            g=PowerLawG(1.0, name="ocean")),
    }


#: Name -> workload instance for the whole suite.
PARSEC_LIKE: dict[str, SyntheticWorkload] = _profiles()


def parsec_like(name: str, **overrides) -> SyntheticWorkload:
    """A fresh instance of a named profile, optionally with overrides.

    Overrides are applied as constructor arguments (e.g. ``n_ops=5000``
    for a shorter run).
    """
    profiles = _profiles()
    if name not in profiles:
        raise InvalidParameterError(
            f"unknown profile {name!r}; available: {sorted(profiles)}")
    base = profiles[name]
    kwargs = {
        "name": base.name, "n_ops": base.n_ops,
        "working_set_kib": base.working_set_kib,
        "hot_fraction": base.hot_fraction, "hot_set_kib": base.hot_set_kib,
        "warm_fraction": base.warm_fraction,
        "warm_set_kib": base.warm_set_kib,
        "stream_fraction": base.stream_fraction,
        "burst_length": base.burst_length, "f_mem": base.f_mem,
        "f_seq": base.f_seq, "g": base.g, "element_bytes": base.element_bytes,
        "write_fraction": base.write_fraction,
    }
    kwargs.update(overrides)
    return SyntheticWorkload(**kwargs)
