"""Radix-2 FFT butterfly pattern (Table I row 4).

``log2(n)`` stages over ``n`` complex points; stage ``s`` pairs elements
at stride ``2^s``.  ``W = O(n log n)`` over ``M = O(n)``, giving the
FFT-like ``g`` of :class:`repro.laws.gfunction.FFTLikeG` (Table I quotes
``2N``).  The strided stages are the classic cache-antagonistic pattern
whose miss behaviour stresses the capacity model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import FFTLikeG
from repro.workloads.base import Workload, WorkloadCharacteristics

__all__ = ["FFTWorkload"]


class FFTWorkload(Workload):
    """In-place radix-2 FFT address stream.

    Parameters
    ----------
    log2_n:
        Transform size exponent (``n = 2**log2_n`` points).
    element_bytes:
        Bytes per complex point (16 = complex128).
    f_mem, f_seq:
        Analytic profile knobs.
    """

    name = "fft"

    def __init__(self, log2_n: int = 12, element_bytes: int = 16,
                 f_mem: float = 0.5, f_seq: float = 0.03) -> None:
        if log2_n < 1:
            raise InvalidParameterError(f"log2_n must be >= 1, got {log2_n}")
        if element_bytes < 1:
            raise InvalidParameterError(
                f"element size must be >= 1, got {element_bytes}")
        self.log2_n = log2_n
        self.n = 1 << log2_n
        self.element_bytes = element_bytes
        self.f_mem = f_mem
        self.f_seq = f_seq

    def characteristics(self) -> WorkloadCharacteristics:
        footprint = self.n * self.element_bytes / 1024.0
        return WorkloadCharacteristics(
            f_seq=self.f_seq, f_mem=self.f_mem,
            g=FFTLikeG(m_ref=float(self.n)),
            working_set_kib=footprint)

    def write_mask(self, n_ops: int) -> np.ndarray:
        """Each butterfly is load/load/store/store."""
        idx = np.arange(n_ops)
        return idx % 4 >= 2

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        n, eb = self.n, self.element_bytes
        chunks = []
        for stage in range(self.log2_n):
            half = 1 << stage
            block = half << 1
            starts = np.arange(0, n, block, dtype=np.int64)
            offs = np.arange(half, dtype=np.int64)
            top = (starts[:, None] + offs[None, :]).ravel()
            bot = top + half
            # Butterfly: load top, load bottom, store top, store bottom.
            stage_stream = np.empty(4 * top.size, dtype=np.int64)
            stage_stream[0::4] = top * eb
            stage_stream[1::4] = bot * eb
            stage_stream[2::4] = top * eb
            stage_stream[3::4] = bot * eb
            chunks.append(stage_stream)
        return np.concatenate(chunks)
