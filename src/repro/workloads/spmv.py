"""Band-sparse matrix-vector multiplication (Table I row 2).

``y = A @ x`` for an ``n x n`` matrix with bandwidth ``2b+1``:
``W = O(n b)`` flops over ``M = O(n b)`` stored elements, hence
``g(N) = N``.  The stream interleaves streaming access to the band
storage with windowed reuse of ``x`` — the classic mixed
streaming/temporal pattern of sparse kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG
from repro.workloads.base import Workload, WorkloadCharacteristics

__all__ = ["BandSpMV"]


class BandSpMV(Workload):
    """Banded sparse matvec.

    Parameters
    ----------
    n:
        Matrix dimension.
    half_bandwidth:
        ``b``: nonzeros per row are in columns ``[i-b, i+b]``.
    element_bytes:
        Bytes per stored element.
    f_mem, f_seq:
        Analytic profile knobs.
    """

    name = "band_spmv"

    def __init__(self, n: int = 2048, half_bandwidth: int = 8,
                 element_bytes: int = 8, f_mem: float = 0.6,
                 f_seq: float = 0.02) -> None:
        if n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {n}")
        if half_bandwidth < 0:
            raise InvalidParameterError(
                f"half bandwidth must be >= 0, got {half_bandwidth}")
        if element_bytes < 1:
            raise InvalidParameterError(
                f"element size must be >= 1, got {element_bytes}")
        self.n = n
        self.b = half_bandwidth
        self.element_bytes = element_bytes
        self.f_mem = f_mem
        self.f_seq = f_seq

    def characteristics(self) -> WorkloadCharacteristics:
        width = 2 * self.b + 1
        footprint = ((self.n * width) + 2 * self.n) * self.element_bytes / 1024.0
        return WorkloadCharacteristics(
            f_seq=self.f_seq, f_mem=self.f_mem,
            g=PowerLawG(1.0, name="band_spmv"),
            working_set_kib=footprint)

    def write_mask(self, n_ops: int) -> np.ndarray:
        """The last access of each row is the ``y[i]`` store."""
        row_len = 2 * (2 * self.b + 1) + 1
        idx = np.arange(n_ops)
        return idx % row_len == row_len - 1

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        """Vectorized stream: one broadcast over a ``(rows, lane)`` grid.

        Row ``i`` interleaves band-storage loads with the ``x`` window
        and ends on the ``y[i]`` store — identical layout (and bits) to
        a per-row loop, built in a single NumPy pass.
        """
        n, b, eb = self.n, self.b, self.element_bytes
        width = 2 * b + 1
        base_a = 0
        base_x = n * width * eb
        base_y = base_x + n * eb
        rows = np.arange(n, dtype=np.int64)[:, None]
        lanes = np.arange(width, dtype=np.int64)
        cols = np.clip(rows + (lanes - b), 0, n - 1)
        a_addrs = base_a + (rows * width + lanes) * eb
        x_addrs = base_x + cols * eb
        out = np.empty((n, 2 * width + 1), dtype=np.int64)
        out[:, 0:2 * width:2] = a_addrs
        out[:, 1:2 * width:2] = x_addrs
        out[:, -1] = base_y + rows[:, 0] * eb
        return out.reshape(-1)
