"""Parameterized synthetic workload.

A knob-per-behaviour generator used to stand in for profiled benchmark
traces: working-set size, locality mixture (hot set vs streaming vs
random), burstiness (clusters of back-to-back accesses that create
memory-level parallelism) and memory intensity are all explicit.  The
PARSEC-like suite (:mod:`repro.workloads.parsec`) is built from named
instances of this class.

Addresses are generated at *element* granularity (``element_bytes``), so
sequential streams enjoy genuine spatial locality within cache lines —
the property the paper's capacity analysis rests on.  Parallel streams
are SPMD-style: every core runs the same distribution over a shared hot
region plus a private slice of the working set, the usual structure of
the SPLASH-2/PARSEC codes being substituted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import GFunction, PowerLawG
from repro.workloads.base import Workload, WorkloadCharacteristics, interleave_gaps

__all__ = ["SyntheticWorkload"]


@dataclass
class SyntheticWorkload(Workload):
    """Synthetic stream with explicit behavioural knobs.

    Attributes
    ----------
    name:
        Identifier.
    n_ops:
        Memory operations to generate (total across cores).
    working_set_kib:
        Footprint of the addressable region.
    hot_fraction:
        Fraction of accesses directed at a small shared hot subset
        (temporal locality; sized to fit an L1).
    hot_set_kib:
        Size of the hot subset.
    warm_fraction:
        Fraction of accesses directed at a mid-size shared subset
        (sized to fit the L2 but not the L1) — the tier that gives real
        applications their LLC hit traffic.
    warm_set_kib:
        Size of the warm subset.
    stream_fraction:
        Fraction of accesses forming sequential element streams (spatial
        locality); the remainder is uniform random over the working set.
    burst_length:
        Mean length of back-to-back access bursts (no compute gap inside
        a burst) — bursts are what create overlapped misses, i.e. the
        workload's intrinsic memory concurrency.
    f_mem:
        Memory-instruction fraction (between bursts).
    f_seq:
        Sequential fraction for the analytic profile.
    g:
        Problem-size scale function for the analytic profile.
    element_bytes:
        Access granularity (8 = float64 elements).
    """

    name: str = "synthetic"
    n_ops: int = 20000
    working_set_kib: float = 2048.0
    hot_fraction: float = 0.5
    hot_set_kib: float = 64.0
    warm_fraction: float = 0.0
    warm_set_kib: float = 256.0
    stream_fraction: float = 0.3
    burst_length: float = 4.0
    f_mem: float = 0.3
    f_seq: float = 0.05
    g: GFunction = field(default_factory=lambda: PowerLawG(1.0, name="linear"))
    element_bytes: int = 8
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.n_ops < 1:
            raise InvalidParameterError(f"n_ops must be >= 1, got {self.n_ops}")
        if self.working_set_kib <= 0 or self.hot_set_kib <= 0:
            raise InvalidParameterError("set sizes must be positive")
        if self.hot_set_kib > self.working_set_kib:
            raise InvalidParameterError("hot set cannot exceed the working set")
        if self.warm_set_kib <= 0:
            raise InvalidParameterError("warm set size must be positive")
        if (self.warm_fraction > 0.0
                and self.warm_set_kib > self.working_set_kib):
            raise InvalidParameterError(
                "an active warm set cannot exceed the working set")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise InvalidParameterError(
                f"hot fraction must be in [0,1], got {self.hot_fraction}")
        if self.warm_fraction < 0.0:
            raise InvalidParameterError(
                f"warm fraction must be >= 0, got {self.warm_fraction}")
        if self.stream_fraction < 0.0 or (self.hot_fraction
                                          + self.warm_fraction
                                          + self.stream_fraction) > 1.0:
            raise InvalidParameterError(
                "hot + warm + stream fractions must not exceed 1")
        if self.burst_length < 1.0:
            raise InvalidParameterError(
                f"burst length must be >= 1, got {self.burst_length}")
        if self.element_bytes < 1:
            raise InvalidParameterError(
                f"element size must be >= 1, got {self.element_bytes}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise InvalidParameterError(
                f"write fraction must be in [0,1], got {self.write_fraction}")

    def characteristics(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            f_seq=self.f_seq, f_mem=self.f_mem, g=self.g,
            working_set_kib=self.working_set_kib)

    # ----- generation -------------------------------------------------------
    def _core_stream(self, n_ops: int, region_lo: int, region_hi: int,
                     rng: np.random.Generator) -> np.ndarray:
        """One core's element-index stream over its private region."""
        eb = self.element_bytes
        hot_elems = max(int(self.hot_set_kib * 1024) // eb, 1)
        warm_elems = max(int(self.warm_set_kib * 1024) // eb, 1)
        region = max(region_hi - region_lo, 1)
        kinds = rng.random(n_ops)
        elems = np.empty(n_ops, dtype=np.int64)
        hot_hi = self.hot_fraction
        warm_hi = hot_hi + self.warm_fraction
        stream_hi = warm_hi + self.stream_fraction
        hot_mask = kinds < hot_hi
        warm_mask = (~hot_mask) & (kinds < warm_hi)
        stream_mask = (~hot_mask) & (~warm_mask) & (kinds < stream_hi)
        rand_mask = ~(hot_mask | warm_mask | stream_mask)
        # Hot accesses: shared region at the start of the working set,
        # zipf-ish concentration via squaring a uniform draw.
        u = rng.random(int(hot_mask.sum()))
        elems[hot_mask] = (u * u * hot_elems).astype(np.int64)
        # Warm accesses: shared mid-size region right after the hot one.
        elems[warm_mask] = hot_elems + rng.integers(
            0, warm_elems, int(warm_mask.sum()))
        elems[rand_mask] = region_lo + rng.integers(
            0, region, int(rand_mask.sum()))
        n_stream = int(stream_mask.sum())
        if n_stream:
            start = region_lo + int(rng.integers(0, region))
            walk = start + np.arange(n_stream, dtype=np.int64)
            elems[stream_mask] = region_lo + (walk - region_lo) % region
        addrs = elems * eb
        # Register blocking: consecutive touches of the same cache line
        # are one architectural access (the compiler keeps the rest in
        # registers).  Without this, sequential element streams would
        # show up as 64/eb misses per line instead of one.
        lines = addrs // 64
        keep = np.ones(addrs.size, dtype=bool)
        keep[1:] = lines[1:] != lines[:-1]
        return addrs[keep]

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        ws_elems = max(int(self.working_set_kib * 1024) // self.element_bytes, 1)
        return self._core_stream(self.n_ops, 0, ws_elems, rng)

    def streams(
        self, n_cores: int, rng: np.random.Generator,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """SPMD per-core streams: shared hot set + private partitions.

        The total op count is divided evenly; each core's random/stream
        accesses target its own contiguous slice of the working set while
        hot accesses share one region — the structure that makes the
        shared-L2 slices and DRAM banks contend realistically.
        """
        if n_cores < 1:
            raise InvalidParameterError(f"need >= 1 core, got {n_cores}")
        ws_elems = max(int(self.working_set_kib * 1024) // self.element_bytes, 1)
        per_core = max(self.n_ops // n_cores, 1)
        bounds = np.linspace(0, ws_elems, n_cores + 1).astype(np.int64)
        out: list[tuple[np.ndarray, np.ndarray]] = []
        eb = self.element_bytes
        shared_bytes = (max(int(self.hot_set_kib * 1024) // eb, 1)
                        + max(int(self.warm_set_kib * 1024) // eb, 1)) * eb
        for c in range(n_cores):
            addrs = self._core_stream(per_core, int(bounds[c]),
                                      int(bounds[c + 1]), rng)
            gaps = self._bursty_gaps(addrs.size, rng)
            # Writes target each core's private data; the shared hot and
            # warm tiers are read-mostly (writing shared lines at this
            # rate would ping-pong the coherence directory in a way real
            # SPMD codes avoid).
            private = addrs >= shared_bytes
            writes = (rng.random(addrs.size) < self.write_fraction) & private
            out.append((addrs, gaps, writes))
        return out

    def _bursty_gaps(self, n_ops: int, rng: np.random.Generator) -> np.ndarray:
        """Geometric gaps with burst structure preserving overall f_mem."""
        gaps = interleave_gaps(n_ops, self.f_mem, rng)
        if self.burst_length <= 1.0 or n_ops <= 1:
            return gaps
        in_burst = rng.random(n_ops) > 1.0 / self.burst_length
        in_burst[0] = False
        leaders = np.flatnonzero(~in_burst)
        if leaders.size == 0:
            return gaps
        moved = int(gaps[in_burst].sum())
        gaps[in_burst] = 0
        share = moved // leaders.size
        gaps[leaders] += share
        gaps[leaders[: moved - share * leaders.size]] += 1
        return gaps
