"""1-D Jacobi stencil sweeps (Table I row 3).

``iterations`` sweeps over an array of ``n`` points; each point loads its
left/center/right neighbours and stores the result:
``W = O(n)`` per sweep over ``M = O(n)`` memory, hence ``g(N) = N``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG
from repro.workloads.base import Workload, WorkloadCharacteristics

__all__ = ["Stencil1D"]


class Stencil1D(Workload):
    """3-point Jacobi stencil with double buffering.

    Parameters
    ----------
    n:
        Grid points, ``>= 3``.
    iterations:
        Number of sweeps.
    element_bytes:
        Bytes per grid element.
    f_mem, f_seq:
        Analytic profile knobs (see :class:`TiledMatMul`).
    """

    name = "stencil"

    def __init__(self, n: int = 4096, iterations: int = 8,
                 element_bytes: int = 8, f_mem: float = 0.5,
                 f_seq: float = 0.01) -> None:
        if n < 3:
            raise InvalidParameterError(f"n must be >= 3, got {n}")
        if iterations < 1:
            raise InvalidParameterError(
                f"iterations must be >= 1, got {iterations}")
        if element_bytes < 1:
            raise InvalidParameterError(
                f"element size must be >= 1, got {element_bytes}")
        self.n = n
        self.iterations = iterations
        self.element_bytes = element_bytes
        self.f_mem = f_mem
        self.f_seq = f_seq

    def characteristics(self) -> WorkloadCharacteristics:
        footprint = 2 * self.n * self.element_bytes / 1024.0  # two buffers
        return WorkloadCharacteristics(
            f_seq=self.f_seq, f_mem=self.f_mem,
            g=PowerLawG(1.0, name="stencil"),
            working_set_kib=footprint)

    def write_mask(self, n_ops: int) -> np.ndarray:
        """Every fourth access is the destination-buffer store."""
        idx = np.arange(n_ops)
        return idx % 4 == 3

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        n, eb = self.n, self.element_bytes
        src_base = 0
        dst_base = n * eb
        idx = np.arange(1, n - 1, dtype=np.int64)
        # Per point: load left, center, right from src; store to dst.
        sweep = np.empty(4 * idx.size, dtype=np.int64)
        sweep[0::4] = src_base + (idx - 1) * eb
        sweep[1::4] = src_base + idx * eb
        sweep[2::4] = src_base + (idx + 1) * eb
        sweep[3::4] = dst_base + idx * eb
        chunks = []
        for it in range(self.iterations):
            if it % 2 == 0:
                chunks.append(sweep)
            else:
                # Swap buffers: shift src/dst bases.
                swapped = sweep.copy()
                src_mask = np.zeros(sweep.size, dtype=bool)
                src_mask[0::4] = src_mask[1::4] = src_mask[2::4] = True
                swapped[src_mask] += dst_base
                swapped[~src_mask] -= dst_base
                chunks.append(swapped)
        return np.concatenate(chunks)
