"""Phase-structured workloads (SimPoint-style behaviour changes).

The paper stresses that "the behavior of an application changes phase by
phase" and that C2-Bound is applied per phase (online re-optimization,
Fig. 7 discussion).  :class:`PhasedWorkload` concatenates sub-workloads
into one stream and remembers the phase boundaries so detectors and the
online model can be evaluated per phase.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.workloads.base import Workload, WorkloadCharacteristics

__all__ = ["PhasedWorkload"]


class PhasedWorkload(Workload):
    """Concatenation of sub-workloads with recorded boundaries.

    Parameters
    ----------
    phases:
        Ordered sub-workloads; each contributes its full address stream.
    name:
        Identifier for reports.
    """

    def __init__(self, phases: Sequence[Workload], name: str = "phased") -> None:
        if not phases:
            raise InvalidParameterError("need at least one phase")
        self.phases = tuple(phases)
        self.name = name
        self._boundaries: "list[int] | None" = None

    def characteristics(self) -> WorkloadCharacteristics:
        """Op-weighted mixture of the phase profiles.

        ``f_seq`` / ``f_mem`` are averaged by each phase's op count; the
        working set is the maximum (capacity must hold the largest
        phase); ``g`` is taken from the dominant (largest) phase.
        """
        chars = [p.characteristics() for p in self.phases]
        weights = np.array([getattr(p, "n_ops", 1) for p in self.phases],
                           dtype=float)
        weights /= weights.sum()
        dominant = int(np.argmax([c.working_set_kib for c in chars]))
        return WorkloadCharacteristics(
            f_seq=float(np.sum(weights * [c.f_seq for c in chars])),
            f_mem=float(np.sum(weights * [c.f_mem for c in chars])),
            g=chars[dominant].g,
            working_set_kib=max(c.working_set_kib for c in chars))

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        streams = [p.address_stream(rng) for p in self.phases]
        sizes = [s.size for s in streams]
        self._boundaries = list(np.cumsum(sizes))
        return np.concatenate(streams)

    @property
    def boundaries(self) -> list[int]:
        """Exclusive end index of each phase in the last generated stream.

        Only available after :meth:`address_stream` has been called.
        """
        if self._boundaries is None:
            raise InvalidParameterError(
                "generate a stream first (boundaries depend on it)")
        return list(self._boundaries)

    def phase_slices(self) -> list[slice]:
        """Slices of the last generated stream, one per phase."""
        bounds = self.boundaries
        starts = [0] + bounds[:-1]
        return [slice(s, e) for s, e in zip(starts, bounds)]
