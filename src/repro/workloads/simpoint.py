"""SimPoint-style representative-interval selection.

The paper simulates "10 billion dynamic instructions for each benchmark
... aided by SimPoint".  SimPoint slices an execution into fixed-size
intervals, summarizes each as a basic-block vector, clusters the vectors
with k-means, and simulates only one representative interval per cluster
(weighted by cluster size).

Our trace-level analogue summarizes each interval of the address stream
as a hashed access histogram (which cache behaviour depends on, the way
BBVs proxy for it), clusters with a from-scratch k-means (k-means++
seeding), and returns weighted representative intervals.  Replaying only
those intervals approximates full-stream statistics at a fraction of the
simulation cost — the same economy the paper leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["SimPointSelection", "interval_features", "kmeans",
           "select_simpoints"]


def interval_features(
    addresses: np.ndarray,
    interval: int,
    *,
    buckets: int = 64,
    line_bytes: int = 64,
) -> np.ndarray:
    """Hashed per-interval access histograms (BBV analogue).

    Returns an ``(n_intervals, buckets)`` matrix of L1-normalized
    histograms; the last partial interval is dropped (as SimPoint does).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1 or addresses.size == 0:
        raise InvalidParameterError("addresses must be a non-empty 1-D array")
    if interval < 1:
        raise InvalidParameterError(f"interval must be >= 1, got {interval}")
    if buckets < 2:
        raise InvalidParameterError(f"buckets must be >= 2, got {buckets}")
    n_int = addresses.size // interval
    if n_int == 0:
        raise InvalidParameterError(
            f"stream shorter than one interval ({interval})")
    lines = addresses[: n_int * interval] // line_bytes
    # splitmix64-style mixer: a plain multiplicative hash is bijective
    # modulo power-of-two bucket counts (line*K mod 2^k only permutes),
    # which would wash out exactly the structure we cluster on.
    h = lines.astype(np.uint64)
    h = (h + np.uint64(0x9E3779B97F4A7C15))
    h ^= h >> np.uint64(30)
    h *= np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(27)
    h *= np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(31)
    hashed = (h % np.uint64(buckets)).astype(np.int64)
    features = np.zeros((n_int, buckets), dtype=float)
    interval_idx = np.repeat(np.arange(n_int), interval)
    np.add.at(features, (interval_idx, hashed), 1.0)
    features /= interval
    return features


def kmeans(
    features: np.ndarray,
    k: int,
    rng: np.random.Generator,
    *,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> tuple[np.ndarray, np.ndarray]:
    """K-means with k-means++ seeding.

    Returns ``(labels, centroids)``.
    """
    x = np.asarray(features, dtype=float)
    if x.ndim != 2 or x.shape[0] == 0:
        raise InvalidParameterError("features must be a non-empty matrix")
    n = x.shape[0]
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, {n}], got {k}")
    # k-means++ seeding.
    centroids = np.empty((k, x.shape[1]))
    centroids[0] = x[rng.integers(0, n)]
    closest = np.full(n, np.inf)
    for j in range(1, k):
        dist = np.sum((x - centroids[j - 1]) ** 2, axis=1)
        closest = np.minimum(closest, dist)
        total = closest.sum()
        if total <= 0:
            centroids[j:] = x[rng.integers(0, n, k - j)]
            break
        probs = closest / total
        centroids[j] = x[rng.choice(n, p=probs)]
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        dists = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = np.argmin(dists, axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = x[labels == j]
            if members.size:
                new_centroids[j] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        if shift <= tol:
            break
    return labels, centroids


@dataclass(frozen=True)
class SimPointSelection:
    """Chosen representative intervals.

    Attributes
    ----------
    interval:
        Interval length in accesses.
    representatives:
        Interval indices chosen, one per cluster.
    weights:
        Fraction of intervals each representative stands for (sums to 1).
    labels:
        Cluster label of every interval.
    """

    interval: int
    representatives: tuple[int, ...]
    weights: tuple[float, ...]
    labels: np.ndarray

    def slices(self) -> list[slice]:
        """Address-stream slices of the representative intervals."""
        return [slice(r * self.interval, (r + 1) * self.interval)
                for r in self.representatives]

    def weighted_estimate(self, per_interval_values: np.ndarray) -> float:
        """SimPoint estimator: weighted mean over representatives.

        ``per_interval_values[i]`` is a statistic measured on the i-th
        *representative* (ordered as :attr:`representatives`).
        """
        vals = np.asarray(per_interval_values, dtype=float)
        if vals.shape[0] != len(self.representatives):
            raise InvalidParameterError(
                f"expected {len(self.representatives)} values, "
                f"got {vals.shape[0]}")
        return float(np.sum(vals * np.asarray(self.weights)))


def select_simpoints(
    addresses: np.ndarray,
    *,
    interval: int = 1000,
    k: int = 4,
    buckets: int = 64,
    seed: int = 0,
) -> SimPointSelection:
    """Full SimPoint-style pipeline on an address stream."""
    features = interval_features(addresses, interval, buckets=buckets)
    k = min(k, features.shape[0])
    rng = np.random.default_rng(seed)
    labels, centroids = kmeans(features, k, rng)
    reps: list[int] = []
    weights: list[float] = []
    n = features.shape[0]
    for j in range(k):
        members = np.flatnonzero(labels == j)
        if members.size == 0:
            continue
        dists = np.sum((features[members] - centroids[j]) ** 2, axis=1)
        reps.append(int(members[np.argmin(dists)]))
        weights.append(members.size / n)
    return SimPointSelection(
        interval=interval,
        representatives=tuple(reps),
        weights=tuple(weights),
        labels=labels,
    )
