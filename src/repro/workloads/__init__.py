"""Workload generators (the paper's SPLASH-2 / PARSEC substitute).

Each generator produces per-core instruction streams in the simulator's
``(addresses, gaps)`` form — byte addresses of memory operations and the
number of compute instructions preceding each — plus the analytic
characteristics the C2-Bound model consumes (``f_seq``, ``f_mem``,
``g(N)``, working-set size).

The Table I kernels (tiled matrix multiply, band-sparse matvec, stencil,
FFT) generate their *actual* loop-nest address patterns; the PARSEC-like
suite (:mod:`repro.workloads.parsec`) uses parameterized synthetic
streams whose structural knobs (working set, locality, burstiness,
memory intensity) match the published characterization of each
benchmark.
"""

from repro.workloads.base import Workload, WorkloadCharacteristics
from repro.workloads.matmul import TiledMatMul
from repro.workloads.stencil import Stencil1D
from repro.workloads.stencil2d import Stencil2D
from repro.workloads.spmv import BandSpMV
from repro.workloads.fft import FFTWorkload
from repro.workloads.gups import GUPS
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.parsec import PARSEC_LIKE, parsec_like
from repro.workloads.phases import PhasedWorkload
from repro.workloads.simpoint import SimPointSelection, select_simpoints

__all__ = [
    "Workload",
    "WorkloadCharacteristics",
    "TiledMatMul",
    "Stencil1D",
    "Stencil2D",
    "BandSpMV",
    "FFTWorkload",
    "GUPS",
    "SyntheticWorkload",
    "PARSEC_LIKE",
    "parsec_like",
    "PhasedWorkload",
    "SimPointSelection",
    "select_simpoints",
]
