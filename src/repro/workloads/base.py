"""Workload interface shared by all generators."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import GFunction, LinearG

__all__ = ["WorkloadCharacteristics", "Workload", "interleave_gaps",
           "partition_round_robin"]


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Analytic profile of a workload (inputs to the C2-Bound model).

    Attributes
    ----------
    f_seq:
        Sequential fraction of the dynamic instruction count.
    f_mem:
        Memory-instruction fraction.
    g:
        Problem-size scale function.
    working_set_kib:
        Footprint of the generated streams (KiB).
    """

    f_seq: float
    f_mem: float
    g: GFunction
    working_set_kib: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.f_seq <= 1.0:
            raise InvalidParameterError(f"f_seq must be in [0,1], got {self.f_seq}")
        if not 0.0 < self.f_mem <= 1.0:
            raise InvalidParameterError(f"f_mem must be in (0,1], got {self.f_mem}")
        if self.working_set_kib <= 0:
            raise InvalidParameterError(
                f"working set must be positive, got {self.working_set_kib}")


class Workload(abc.ABC):
    """A generator of per-core instruction streams.

    Subclasses implement :meth:`address_stream` (the single-threaded
    reference pattern) and may override :meth:`streams` for a bespoke
    parallel decomposition; the default decomposition deals addresses
    round-robin, which keeps per-core footprints overlapping like a
    shared-memory parallelization.
    """

    name: str = "workload"

    @abc.abstractmethod
    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        """Byte addresses of the workload's memory operations, in order."""

    @abc.abstractmethod
    def characteristics(self) -> WorkloadCharacteristics:
        """Analytic profile used by the C2-Bound model."""

    def write_mask(self, n_ops: int) -> "np.ndarray | None":
        """Boolean store mask aligned with :meth:`address_stream`.

        ``None`` (the default) means read-only traffic; kernels with a
        known loop structure override this with their exact store
        positions so the simulator's writeback/coherence machinery sees
        realistic write traffic.
        """
        return None

    def streams(
        self, n_cores: int, rng: np.random.Generator,
    ) -> "list[tuple]":
        """Per-core ``(addresses, gaps[, writes])`` streams.

        The default implementation splits :meth:`address_stream` (and
        the write mask, when defined) across cores round-robin and draws
        i.i.d. geometric compute gaps to realize the workload's
        ``f_mem``.
        """
        if n_cores < 1:
            raise InvalidParameterError(f"need >= 1 core, got {n_cores}")
        addresses = self.address_stream(rng)
        parts = partition_round_robin(addresses, n_cores)
        f_mem = self.characteristics().f_mem
        mask = self.write_mask(addresses.size)
        if mask is None:
            return [(part, interleave_gaps(part.size, f_mem, rng))
                    for part in parts]
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != addresses.shape:
            raise InvalidParameterError(
                "write mask must match the address stream")
        mask_parts = [np.ascontiguousarray(mask[i::n_cores])
                      for i in range(n_cores)]
        return [(part, interleave_gaps(part.size, f_mem, rng), wpart)
                for part, wpart in zip(parts, mask_parts)]


def interleave_gaps(n_ops: int, f_mem: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Draw compute gaps realizing a memory-instruction fraction.

    Gap lengths are geometric with mean ``(1 - f_mem)/f_mem`` so that the
    expected fraction of memory instructions equals ``f_mem``.
    """
    if not 0.0 < f_mem <= 1.0:
        raise InvalidParameterError(f"f_mem must be in (0,1], got {f_mem}")
    if n_ops == 0:
        return np.zeros(0, dtype=np.int64)
    if f_mem >= 1.0:
        return np.zeros(n_ops, dtype=np.int64)
    # numpy's geometric counts trials to first success (>= 1); the number
    # of compute instructions before a memory op is that minus one.
    return (rng.geometric(f_mem, size=n_ops) - 1).astype(np.int64)


def partition_round_robin(addresses: np.ndarray, n_cores: int) -> list[np.ndarray]:
    """Deal a reference stream across cores, preserving per-core order."""
    addresses = np.asarray(addresses, dtype=np.int64)
    return [np.ascontiguousarray(addresses[i::n_cores]) for i in range(n_cores)]
