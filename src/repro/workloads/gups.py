"""GUPS-style random update workload (the RandomAccess HPC benchmark).

The canonical concurrency-hungry, locality-free kernel: random
read-modify-write updates over a huge table.  Every access misses every
cache, so performance is purely a function of memory concurrency —
the workload that isolates C_M/MSHR effects the way streaming isolates
prefetching.  ``W = O(updates)`` over ``M = O(table)``, i.e.
``g(N) = N`` when the table scales with memory.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG
from repro.workloads.base import Workload, WorkloadCharacteristics

__all__ = ["GUPS"]


class GUPS(Workload):
    """Random update stream over a table.

    Parameters
    ----------
    updates:
        Number of updates.
    table_kib:
        Table size.
    element_bytes:
        Update granularity.
    f_mem, f_seq:
        Analytic profile knobs (GUPS is nearly pure memory traffic).
    """

    name = "gups"

    def __init__(self, updates: int = 10000, table_kib: float = 64 * 1024,
                 element_bytes: int = 8, f_mem: float = 0.8,
                 f_seq: float = 0.01) -> None:
        if updates < 1:
            raise InvalidParameterError(f"updates must be >= 1, got {updates}")
        if table_kib <= 0:
            raise InvalidParameterError(
                f"table size must be positive, got {table_kib}")
        if element_bytes < 1:
            raise InvalidParameterError(
                f"element size must be >= 1, got {element_bytes}")
        self.updates = updates
        self.table_kib = table_kib
        self.element_bytes = element_bytes
        self.f_mem = f_mem
        self.f_seq = f_seq

    def characteristics(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            f_seq=self.f_seq, f_mem=self.f_mem,
            g=PowerLawG(1.0, name="gups"),
            working_set_kib=self.table_kib)

    def write_mask(self, n_ops: int) -> np.ndarray:
        """Updates are read-modify-write: every access stores."""
        return np.ones(n_ops, dtype=bool)

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        table_elems = max(int(self.table_kib * 1024) // self.element_bytes, 1)
        idx = rng.integers(0, table_elems, self.updates)
        return idx.astype(np.int64) * self.element_bytes
