"""Tiled dense matrix multiplication (Table I row 1).

Generates the address pattern of ``C = A @ B`` with square tiling:
``W = 2n^3`` flops over ``M = 3n^2`` elements, hence ``g(N) = N^{3/2}``
(the paper's worked example in Section II-B).

The generated stream follows the canonical tiled loop nest
``(ii, jj, kk, i, j, k)`` touching ``A[i,k]``, ``B[k,j]``, ``C[i,j]``
per inner iteration, which exercises both spatial locality (row-major
``A`` and ``C``) and tile-level temporal reuse — exactly the behaviour
whose capacity sensitivity the C2-Bound cache model captures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG
from repro.workloads.base import Workload, WorkloadCharacteristics

__all__ = ["TiledMatMul"]


@dataclass(frozen=True)
class _TMMParams:
    n: int
    tile: int
    element_bytes: int
    f_mem: float
    f_seq: float


class TiledMatMul(Workload):
    """Tiled ``n x n`` matrix multiply.

    Parameters
    ----------
    n:
        Matrix dimension (rounded up to a multiple of ``tile``).
    tile:
        Tile edge, ``>= 1``.
    element_bytes:
        Bytes per matrix element (8 = float64).
    f_mem:
        Memory-instruction fraction used when interleaving compute gaps
        (the multiply-add work between loads).
    f_seq:
        Sequential fraction attributed to the non-parallelizable setup.
    """

    name = "tmm"

    def __init__(self, n: int = 48, tile: int = 8, element_bytes: int = 8,
                 f_mem: float = 0.4, f_seq: float = 0.02) -> None:
        if n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {n}")
        if tile < 1:
            raise InvalidParameterError(f"tile must be >= 1, got {tile}")
        if tile > n:
            tile = n
        if element_bytes < 1:
            raise InvalidParameterError(
                f"element size must be >= 1, got {element_bytes}")
        n = ((n + tile - 1) // tile) * tile
        self.params = _TMMParams(n=n, tile=tile, element_bytes=element_bytes,
                                 f_mem=f_mem, f_seq=f_seq)

    def characteristics(self) -> WorkloadCharacteristics:
        p = self.params
        footprint = 3 * p.n * p.n * p.element_bytes / 1024.0
        return WorkloadCharacteristics(
            f_seq=p.f_seq, f_mem=p.f_mem,
            g=PowerLawG(1.5, name="tmm"),
            working_set_kib=footprint)

    def write_mask(self, n_ops: int) -> np.ndarray:
        """Every third access is the ``C[i,j]`` update (a store)."""
        idx = np.arange(n_ops)
        return idx % 3 == 2

    def address_stream(self, rng: np.random.Generator) -> np.ndarray:
        """Vectorized address stream of the tiled loop nest.

        The three matrices are laid out contiguously: A at 0, B after A,
        C after B (row-major).
        """
        p = self.params
        n, t, eb = p.n, p.tile, p.element_bytes
        base_a = 0
        base_b = n * n * eb
        base_c = 2 * n * n * eb
        nt = n // t
        # Indices of one (i, j, k) tile-interior nest, vectorized.
        i_in, j_in, k_in = np.meshgrid(np.arange(t), np.arange(t),
                                       np.arange(t), indexing="ij")
        i_in = i_in.ravel()
        j_in = j_in.ravel()
        k_in = k_in.ravel()
        # Tile origins of the (ii, jj, kk) outer nest, one per row of a
        # (tiles, interior) grid — the whole stream in one broadcast,
        # bit-identical to looping tiles one at a time.
        oi, oj, ok = np.meshgrid(np.arange(nt), np.arange(nt),
                                 np.arange(nt), indexing="ij")
        i = (oi.ravel()[:, None] * t + i_in).astype(np.int64)
        j = (oj.ravel()[:, None] * t + j_in).astype(np.int64)
        k = (ok.ravel()[:, None] * t + k_in).astype(np.int64)
        a = base_a + (i * n + k) * eb
        b = base_b + (k * n + j) * eb
        c = base_c + (i * n + j) * eb
        # Per inner iteration: load A, load B, update C.
        block = np.empty((a.shape[0], 3 * a.shape[1]), dtype=np.int64)
        block[:, 0::3] = a
        block[:, 1::3] = b
        block[:, 2::3] = c
        return block.reshape(-1)
