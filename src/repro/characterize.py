"""Application characterization: the first step of APS (paper Fig. 5).

"For each application, using tools to measure f_mem, C-AMAT, and other
parameters" — the paper uses PAPI/HPCToolkit on hardware and GEM5 +
DRAMSim2 in simulation.  Here the measurement substrate is our CMP
simulator plus the HCD/MCD detector:

- ``f_mem``          from the executed instruction mix,
- ``C-AMAT`` and ``C`` from the per-core traces (cross-checked against
  the online detector),
- the working set  from the address stream (Denning),
- ``g``             from the workload's declared complexity, or fitted
  empirically from two problem scales,
- ``f_seq``         from the workload's declared profile (a dynamic
  sequential-fraction measurement needs program structure a trace does
  not carry).

The result is an :class:`repro.core.params.ApplicationProfile` ready for
the optimizer — closing the characterize -> optimize -> simulate loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.camat.analyzer import TraceAnalyzer, TraceStatistics
from repro.capacity.workingset import working_set_size
from repro.core.params import ApplicationProfile
from repro.errors import InvalidParameterError
from repro.laws.gfunction import GFunction, PowerLawG
from repro.sim.cmp import CMPSimulator, SimulationResult
from repro.sim.config import SimulatedChip
from repro.workloads.base import Workload

__all__ = ["CharacterizationReport", "characterize", "fit_g_exponent"]


@dataclass(frozen=True)
class CharacterizationReport:
    """Measured inputs for the C2-Bound model.

    Attributes
    ----------
    profile:
        The assembled :class:`ApplicationProfile`.
    per_core:
        Per-core trace statistics (C-AMAT parameters).
    simulation:
        The raw simulation result the measurement came from.
    working_set_kib:
        Measured footprint of the address streams.
    """

    profile: ApplicationProfile
    per_core: tuple[TraceStatistics, ...]
    simulation: SimulationResult
    working_set_kib: float

    @property
    def mean_concurrency(self) -> float:
        """Access-weighted mean ``C`` across cores."""
        total = sum(s.accesses for s in self.per_core)
        return sum(s.concurrency * s.accesses for s in self.per_core) / total

    @property
    def mean_camat(self) -> float:
        """Access-weighted mean C-AMAT across cores."""
        total = sum(s.accesses for s in self.per_core)
        return sum(s.camat * s.accesses for s in self.per_core) / total


def characterize(
    workload: Workload,
    chip: "SimulatedChip | None" = None,
    *,
    seed: int = 42,
    g: "GFunction | None" = None,
    line_bytes: int = 64,
) -> CharacterizationReport:
    """Measure a workload on the simulator and assemble its profile.

    Parameters
    ----------
    workload:
        The workload to characterize.
    chip:
        Measurement platform (a default 4-core chip if omitted) — the
        paper stresses that C-AMAT parameters are platform-dependent,
        which is why APS re-simulates candidate designs afterwards.
    seed:
        Stream generation seed.
    g:
        Override for the scale function; defaults to the workload's
        declared ``g``.
    line_bytes:
        Granularity for the working-set measurement.
    """
    chip = chip if chip is not None else SimulatedChip(n_cores=4)
    rng = np.random.default_rng(seed)
    streams = workload.streams(chip.n_cores, rng)
    if not streams:
        raise InvalidParameterError("workload produced no streams")
    result = CMPSimulator(chip).run(streams)
    analyzer = TraceAnalyzer()
    per_core = tuple(analyzer.analyze(core.trace())
                     for core in result.cores if core.mem_ops > 0)
    if not per_core:
        raise InvalidParameterError("workload executed no memory accesses")
    declared = workload.characteristics()
    all_lines = np.concatenate([stream[0] // line_bytes
                                for stream in streams])
    ws_kib = working_set_size(all_lines) * line_bytes / 1024.0
    total_acc = sum(s.accesses for s in per_core)
    c_mean = sum(s.concurrency * s.accesses for s in per_core) / total_acc
    f_mem = (sum(c.mem_ops for c in result.cores)
             / max(result.total_instructions, 1))
    profile = ApplicationProfile(
        name=workload.name,
        f_seq=declared.f_seq,
        f_mem=float(np.clip(f_mem, 1e-6, 1.0)),
        g=g if g is not None else declared.g,
        concurrency=max(c_mean, 1.0),
        ic0=float(result.total_instructions),
        base_working_set_kib=max(ws_kib, 1e-3),
    )
    return CharacterizationReport(
        profile=profile,
        per_core=per_core,
        simulation=result,
        working_set_kib=ws_kib,
    )


def fit_g_exponent(
    small_scale: tuple[float, float],
    large_scale: tuple[float, float],
) -> PowerLawG:
    """Fit a power-law ``g`` from two (memory, work) measurements.

    ``W = h(M) = a * M^b`` gives ``g(N) = N^b`` with
    ``b = log(W2/W1) / log(M2/M1)`` — the empirical version of the
    Table I derivation for applications without known complexity.
    """
    m1, w1 = small_scale
    m2, w2 = large_scale
    if min(m1, w1, m2, w2) <= 0:
        raise InvalidParameterError("measurements must be positive")
    if m2 == m1:
        raise InvalidParameterError("need two distinct memory scales")
    b = float(np.log(w2 / w1) / np.log(m2 / m1))
    if b < 0:
        raise InvalidParameterError(
            f"work decreased with memory (b={b:.3f}); not a power law")
    return PowerLawG(exponent=b, name="fitted")
