"""Throughput ``W/T`` — the case-I objective (paper Figs. 10-11).

When the workload is linearly or super-linearly scalable
(``g(N) >= O(N)``) there is no finite ``N`` minimizing execution time, so
the optimizer maximizes the ratio of (scaled) problem size to execution
time instead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["throughput"]


def throughput(
    problem_size: "float | np.ndarray",
    execution_time: "float | np.ndarray",
) -> "float | np.ndarray":
    """``W / T``; broadcasts over arrays.

    Raises
    ------
    InvalidParameterError
        If any execution time is non-positive.
    """
    w = np.asarray(problem_size, dtype=float)
    t = np.asarray(execution_time, dtype=float)
    if np.any(t <= 0):
        raise InvalidParameterError("execution time must be positive")
    out = w / t
    if np.isscalar(problem_size) and np.isscalar(execution_time):
        return float(out)
    return out
