"""APC: data Accesses Per memory-active Cycle (Wang & Sun, used in §V).

``APC = accesses / memory-active cycles`` for a given memory layer, where
a cycle is memory-active iff at least one access to that layer is
outstanding.  The paper uses the identity ``C-AMAT = 1/APC`` and Fig. 13's
observation ``APC(L1) >> APC(LLC) >> APC(DRAM)`` to argue the relevant
capacity bound is the *on-chip* memory bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.camat.analyzer import TraceAnalyzer
from repro.camat.trace import AccessTrace
from repro.errors import InvalidParameterError

__all__ = ["APCMeasurement", "LayerAPC", "apc_from_counts",
           "apc_from_camat", "apc_from_trace"]


@dataclass(frozen=True)
class APCMeasurement:
    """An APC measurement for one memory layer.

    Attributes
    ----------
    accesses:
        Number of accesses serviced by the layer.
    active_cycles:
        Number of cycles in which the layer had >= 1 outstanding access.
    """

    accesses: int
    active_cycles: int

    def __post_init__(self) -> None:
        if self.accesses < 0 or self.active_cycles < 0:
            raise InvalidParameterError("counts must be non-negative")
        if self.accesses > 0 and self.active_cycles == 0:
            raise InvalidParameterError(
                "accesses imply at least one active cycle")

    @property
    def apc(self) -> float:
        """Accesses per memory-active cycle (0 for an idle layer)."""
        if self.active_cycles == 0:
            return 0.0
        return self.accesses / self.active_cycles

    @property
    def camat(self) -> float:
        """The layer's C-AMAT via the identity ``C-AMAT = 1/APC``."""
        if self.accesses == 0:
            raise InvalidParameterError("C-AMAT undefined for idle layer")
        return self.active_cycles / self.accesses


@dataclass(frozen=True)
class LayerAPC:
    """APC across a memory hierarchy (Fig. 13's three layers).

    Attributes
    ----------
    l1, llc, dram:
        Per-layer measurements.  ``l1`` counts all processor-issued
        accesses; ``llc`` the L1 misses; ``dram`` the LLC misses.
    """

    l1: APCMeasurement
    llc: APCMeasurement
    dram: APCMeasurement

    def as_dict(self) -> dict[str, float]:
        """Layer-name -> APC value, in hierarchy order."""
        return {"L1": self.l1.apc, "LLC": self.llc.apc, "DRAM": self.dram.apc}

    def gap_ratios(self) -> dict[str, float]:
        """Performance gaps between adjacent layers (Fig. 13 discussion)."""
        out: dict[str, float] = {}
        if self.llc.apc > 0:
            out["L1/LLC"] = self.l1.apc / self.llc.apc
        if self.dram.apc > 0:
            out["LLC/DRAM"] = self.llc.apc / self.dram.apc
        return out


def apc_from_counts(accesses: int, active_cycles: int) -> float:
    """APC directly from counter values."""
    return APCMeasurement(accesses, active_cycles).apc


def apc_from_camat(camat_value: float) -> float:
    """``APC = 1 / C-AMAT`` (paper Section V)."""
    if camat_value <= 0:
        raise InvalidParameterError(
            f"C-AMAT must be positive, got {camat_value}")
    return 1.0 / camat_value


def apc_from_trace(trace: AccessTrace) -> APCMeasurement:
    """Measure APC of the layer that serviced ``trace``.

    Uses the analyzer's memory-active cycle count, so
    ``apc_from_trace(t).camat == TraceAnalyzer().analyze(t).camat``.
    """
    stats = TraceAnalyzer().analyze(trace)
    return APCMeasurement(accesses=stats.accesses,
                          active_cycles=stats.memory_active_wall_cycles)
