"""Queueing formulas for memory-contention analysis.

The event-driven DRAM model produces contention *behaviour*; these
closed forms predict it.  A DRAM bank serving fixed-latency requests is
an M/D/1 queue (Poisson arrivals, deterministic service); its mean wait
is the Pollaczek-Khinchine value

    W_q = rho / (2 * mu * (1 - rho)),        rho = lambda / mu

and the banked device is approximated as ``k`` independent M/D/1 queues
under random interleaving.  The test suite checks the simulator's
measured DRAM latency inflation against these curves — the analytic
model's bandwidth-saturation sanity check.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

__all__ = ["utilization", "mm1_wait", "md1_wait", "banked_dram_latency"]


def utilization(arrival_rate: float, service_rate: float) -> float:
    """``rho = lambda / mu`` with domain checks (must be < 1)."""
    if arrival_rate < 0:
        raise InvalidParameterError(
            f"arrival rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise InvalidParameterError(
            f"service rate must be positive, got {service_rate}")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise InvalidParameterError(
            f"queue is unstable: rho = {rho:.3f} >= 1")
    return rho


def mm1_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean queueing delay of an M/M/1 queue (exponential service)."""
    rho = utilization(arrival_rate, service_rate)
    return rho / (service_rate * (1.0 - rho))


def md1_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean queueing delay of an M/D/1 queue (deterministic service).

    Exactly half the M/M/1 wait (Pollaczek-Khinchine with zero service
    variance) — the right model for a DRAM bank's fixed-latency
    accesses.
    """
    return 0.5 * mm1_wait(arrival_rate, service_rate)


def banked_dram_latency(arrival_rate: float, service_cycles: float,
                        banks: int) -> float:
    """Predicted mean DRAM latency under load.

    Requests arrive at ``arrival_rate`` (per cycle, aggregate), spread
    uniformly over ``banks`` independent banks each taking
    ``service_cycles`` per request; returns service + M/D/1 wait.
    """
    if banks < 1:
        raise InvalidParameterError(f"banks must be >= 1, got {banks}")
    if service_cycles <= 0:
        raise InvalidParameterError(
            f"service time must be positive, got {service_cycles}")
    per_bank_rate = arrival_rate / banks
    mu = 1.0 / service_cycles
    return service_cycles + md1_wait(per_bank_rate, mu)
