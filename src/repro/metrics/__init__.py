"""Memory performance metrics (paper Section V).

APC (data Accesses Per memory-active Cycle) measures per-layer memory
throughput and relates to C-AMAT by ``APC = 1 / C-AMAT``.  Throughput
``W/T`` is the case-I objective of the optimizer.
"""

from repro.metrics.apc import (
    APCMeasurement,
    LayerAPC,
    apc_from_counts,
    apc_from_camat,
    apc_from_trace,
)
from repro.metrics.queueing import (
    banked_dram_latency,
    md1_wait,
    mm1_wait,
    utilization,
)
from repro.metrics.throughput import throughput

__all__ = [
    "utilization",
    "mm1_wait",
    "md1_wait",
    "banked_dram_latency",
    "APCMeasurement",
    "LayerAPC",
    "apc_from_counts",
    "apc_from_camat",
    "apc_from_trace",
    "throughput",
]
