"""Shared-cache partitioning by marginal miss-rate utility.

Complementary to core allocation: given per-application miss-rate curves
(:class:`repro.capacity.missrate.MissRateCurve`) and access intensities,
the shared LLC capacity is divided in fixed-size ways so that total
miss *traffic* is minimized — greedy on marginal utility, the classic
utility-based cache partitioning formulation, which the paper's
"partitioning" use case calls for.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.capacity.missrate import MissRateCurve
from repro.errors import InvalidParameterError

__all__ = ["PartitionResult", "partition_cache"]


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a cache partitioning.

    Attributes
    ----------
    ways:
        Ways per application.
    capacities_kib:
        Capacity per application.
    miss_traffic:
        Expected misses/op summed over applications, weighted by their
        access intensities (the minimized objective).
    """

    ways: tuple[int, ...]
    capacities_kib: tuple[float, ...]
    miss_traffic: float


def partition_cache(
    curves: Sequence[MissRateCurve],
    intensities: Sequence[float],
    total_kib: float,
    n_ways: int,
    *,
    min_ways_per_app: int = 1,
) -> PartitionResult:
    """Greedy utility-based partitioning of ``total_kib`` into ways.

    Parameters
    ----------
    curves:
        Miss-rate-vs-capacity curve per application.
    intensities:
        Relative access rates (misses are weighted by these).
    total_kib:
        Shared capacity.
    n_ways:
        Allocation granularity (``total_kib / n_ways`` per way).
    min_ways_per_app:
        Floor per application.
    """
    if len(curves) != len(intensities):
        raise InvalidParameterError("curves and intensities differ in length")
    if not curves:
        raise InvalidParameterError("need at least one application")
    if total_kib <= 0 or n_ways < 1:
        raise InvalidParameterError("capacity and way count must be positive")
    if any(w <= 0 for w in intensities):
        raise InvalidParameterError("intensities must be positive")
    if n_ways < len(curves) * min_ways_per_app:
        raise InvalidParameterError(
            f"{n_ways} ways cannot satisfy the per-app floor")
    way_kib = total_kib / n_ways

    def weighted_miss(i: int, ways: int) -> float:
        if ways == 0:
            return intensities[i] * 1.0  # no cache: every access misses
        return intensities[i] * float(curves[i].miss_rate(ways * way_kib))

    counts = [min_ways_per_app] * len(curves)
    remaining = n_ways - sum(counts)
    heap: list[tuple[float, int]] = []
    for i in range(len(curves)):
        gain = weighted_miss(i, counts[i]) - weighted_miss(i, counts[i] + 1)
        heapq.heappush(heap, (-gain, i))
    while remaining > 0 and heap:
        neg_gain, i = heapq.heappop(heap)
        counts[i] += 1
        remaining -= 1
        gain = weighted_miss(i, counts[i]) - weighted_miss(i, counts[i] + 1)
        heapq.heappush(heap, (-gain, i))
    traffic = sum(weighted_miss(i, counts[i]) for i in range(len(curves)))
    return PartitionResult(
        ways=tuple(counts),
        capacities_kib=tuple(c * way_kib for c in counts),
        miss_traffic=float(traffic),
    )
