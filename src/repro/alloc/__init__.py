"""Resource allocation across applications (paper Fig. 7).

"C2-Bound analytic results can be ... applied to scheduling,
partitioning, and allocating resources among diverse applications."

- :mod:`repro.alloc.scheduler` allocates cores: an application with a
  large ``f_seq`` and low memory concurrency gains little from extra
  cores, one with small ``f_seq`` and high ``C`` gains a lot — the
  water-filling allocator reproduces Fig. 7's qualitative split.
- :mod:`repro.alloc.partition` partitions shared cache capacity by
  marginal miss-rate utility.
"""

from repro.alloc.scheduler import AllocationResult, allocate_cores
from repro.alloc.partition import PartitionResult, partition_cache

__all__ = [
    "AllocationResult",
    "allocate_cores",
    "PartitionResult",
    "partition_cache",
]
