"""Core allocation across concurrent applications (paper Fig. 7).

Each application's utility from ``n`` cores is its C2-Bound throughput
(problem size over Eq. 10 time) at the shared machine's per-core area
split.  Cores are assigned by greedy water-filling on marginal utility,
which is optimal when the per-application utility is concave in ``n`` —
the case for the model's speedup curves.

The Fig. 7 narrative falls out directly: an application with large
``f_seq`` and ``C = 1`` has rapidly diminishing marginal utility and
receives few cores; one with small ``f_seq`` and high ``C`` keeps
earning and receives many.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core.camat_model import CAMATModel
from repro.core.optimizer import C2BoundOptimizer
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError

__all__ = ["AllocationResult", "allocate_cores"]


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a multi-application core allocation.

    Attributes
    ----------
    cores:
        Cores per application, parallel to the input order.
    utilities:
        Throughput of each application at its allocation.
    total_utility:
        Sum of the utilities (the maximized objective).
    """

    cores: tuple[int, ...]
    utilities: tuple[float, ...]

    @property
    def total_utility(self) -> float:
        return float(sum(self.utilities))


def allocate_cores(
    apps: Sequence[ApplicationProfile],
    machine: MachineParameters,
    total_cores: int,
    *,
    min_per_app: int = 1,
    camat_model: "CAMATModel | None" = None,
    utility_kind: str = "rate",
) -> AllocationResult:
    """Greedy water-filling allocation of ``total_cores``.

    Parameters
    ----------
    apps:
        Application profiles sharing the chip.
    machine:
        Machine parameters; the per-core area split is computed once for
        ``total_cores`` cores (the chip is built, allocation is a
        scheduling decision on top of it).
    total_cores:
        Cores available.
    min_per_app:
        Floor per application (>= 0; apps with 0 cores make no progress).
    utility_kind:
        ``"rate"`` (default): fixed-problem execution rate
        ``1 / (q_i * (f_seq + (1 - f_seq)/n))`` — concave in ``n``, the
        Fig. 7 setting where a large ``f_seq``/low ``C`` application
        saturates quickly and a small ``f_seq``/high ``C`` one keeps
        earning.  ``"throughput"``: Sun-Ni-scaled ``W/T`` (for
        memory-bounded scaling workloads; note linear ``g`` has constant
        marginal utility, so allocation degenerates to the best app).

    Returns
    -------
    AllocationResult
    """
    if not apps:
        raise InvalidParameterError("need at least one application")
    if total_cores < len(apps) * min_per_app:
        raise InvalidParameterError(
            f"{total_cores} cores cannot satisfy the per-app floor "
            f"{min_per_app} for {len(apps)} applications")
    if utility_kind not in ("rate", "throughput"):
        raise InvalidParameterError(
            f"utility_kind must be 'rate' or 'throughput', got {utility_kind!r}")
    shared_model = camat_model if camat_model is not None else CAMATModel()
    # Fixed physical design: the chip's area split at full core count.
    optimizers = [C2BoundOptimizer(app, machine, shared_model)
                  for app in apps]
    chip_split = optimizers[0].area_split(total_cores)
    per_instr = [opt.lagrangian.per_instruction_time(
        chip_split.a0, chip_split.a1, chip_split.a2) for opt in optimizers]

    def utility(i: int, n: int) -> float:
        """Utility of app i on n cores of the fixed chip design."""
        if n == 0:
            return 0.0
        app = apps[i]
        q = per_instr[i]
        if utility_kind == "rate":
            scale = app.f_seq + (1.0 - app.f_seq) / n
            return 1.0 / (q * scale * machine.cycle_time)
        g_n = float(app.g(float(n)))
        scale = app.f_seq + g_n * (1.0 - app.f_seq) / n
        time = app.ic0 * q * scale * machine.cycle_time
        return g_n * app.ic0 / time

    counts = [min_per_app] * len(apps)
    remaining = total_cores - sum(counts)
    # Max-heap of marginal gains.
    heap: list[tuple[float, int]] = []
    for i in range(len(apps)):
        gain = utility(i, counts[i] + 1) - utility(i, counts[i])
        heapq.heappush(heap, (-gain, i))
    while remaining > 0 and heap:
        neg_gain, i = heapq.heappop(heap)
        if -neg_gain <= 0:
            # No app benefits from more cores; stop assigning.
            break
        counts[i] += 1
        remaining -= 1
        gain = utility(i, counts[i] + 1) - utility(i, counts[i])
        heapq.heappush(heap, (-gain, i))
    utilities = tuple(utility(i, counts[i]) for i in range(len(apps)))
    return AllocationResult(cores=tuple(counts), utilities=utilities)
