"""The C2-Bound optimizer: solve Eq. 13 with the paper's case split.

For each candidate core count ``N`` the per-core area budget
``B = (A - Ac)/N`` is split between core logic and the two cache levels
by minimizing the per-instruction time (a smooth 2-D problem solved by
nested Brent searches, optionally polished by the Newton/KKT solver of
:class:`repro.core.lagrange.LagrangianSystem`).  The outer search over the
integer ``N`` then follows Fig. 6:

- case I, ``g(N) >= O(N)``: no finite ``N`` minimizes time — maximize
  throughput ``W/T``;
- case II, ``g(N) < O(N)``: minimize execution time ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.camat_model import CAMATModel
from repro.core.chip import ChipConfig
from repro.core.constraints import AreaBudget, pollack_cpi
from repro.core.lagrange import LagrangianSystem
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import ConvergenceError, InvalidParameterError
from repro.solvers import brent_minimize, integer_minimize

__all__ = ["DesignPoint", "OptimizationResult", "C2BoundOptimizer"]


@dataclass(frozen=True)
class DesignPoint:
    """A fully evaluated design: configuration plus model metrics.

    Attributes
    ----------
    config:
        The chip skeleton ``(N, A0, A1, A2)``.
    cpi_exe:
        Pollack CPI of one core.
    amat, camat:
        Memory latency metrics at this cache allocation.
    problem_size:
        Scaled problem size ``W = g(N) * W0`` (instruction count).
    execution_time:
        Eq. 10's ``J_D``.
    """

    config: ChipConfig
    cpi_exe: float
    amat: float
    camat: float
    problem_size: float
    execution_time: float

    @property
    def throughput(self) -> float:
        """``W / T`` — the case-I objective."""
        return self.problem_size / self.execution_time

    @property
    def n(self) -> int:
        """Core count shortcut."""
        return self.config.n


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a full C2-Bound optimization.

    Attributes
    ----------
    best:
        The winning design point.
    regime:
        ``'superlinear' | 'linear' | 'sublinear'`` — the ``g`` regime.
    case:
        ``'maximize-throughput'`` (case I) or ``'minimize-time'``
        (case II) per Fig. 6.
    evaluations:
        Number of (analytic) design evaluations performed.
    curve:
        Design points evaluated along the N axis, ordered by N (useful
        for plotting the Figs. 8-11 style sweeps).
    """

    best: DesignPoint
    regime: str
    case: str
    evaluations: int
    curve: tuple[DesignPoint, ...] = field(default_factory=tuple)


class C2BoundOptimizer:
    """Solve the CMP DSE optimization of Eq. 13.

    Parameters
    ----------
    app:
        Application profile (``f_seq``, ``f_mem``, ``g``, ``C`` …).
    machine:
        Machine parameters (area budget, Pollack constants …).
    camat_model:
        Cache-area-to-C-AMAT model; a default two-level model is used if
        omitted.
    """

    def __init__(self, app: ApplicationProfile, machine: MachineParameters,
                 camat_model: "CAMATModel | None" = None) -> None:
        self.app = app
        self.machine = machine
        self.camat_model = camat_model if camat_model is not None else CAMATModel()
        self.lagrangian = LagrangianSystem(app, machine, self.camat_model)
        self.budget = AreaBudget(machine)

    # ----- per-N area split ---------------------------------------------------
    def area_split(self, n: int) -> ChipConfig:
        """Optimal ``(A0, A1, A2)`` for ``n`` cores (nested Brent).

        Minimizes ``CPI_exe(A0) + S*AMAT(A1, A2)`` over the simplex
        ``A0 + A1 + A2 = B`` with the machine's minimum sizes as bounds.
        """
        m = self.machine
        b = self.budget.per_core_budget(n)
        min_rest = 2.0 * m.min_cache_area
        if b <= m.min_core_area + min_rest:
            raise InvalidParameterError(
                f"N={n} infeasible: per-core budget {b:.4f} below minimum "
                f"{m.min_core_area + min_rest:.4f}")

        def best_cache_split(a0: float) -> tuple[float, float, float]:
            rest = b - a0
            lo = m.min_cache_area
            hi = rest - m.min_cache_area
            if hi <= lo:
                a1 = rest / 2.0
                return a1, rest - a1, self.lagrangian.per_instruction_time(
                    a0, a1, rest - a1)
            a1, q = brent_minimize(
                lambda a1v: self.lagrangian.per_instruction_time(
                    a0, a1v, rest - a1v), lo, hi, tol=1e-6)
            return a1, rest - a1, q

        def outer(a0: float) -> float:
            return best_cache_split(a0)[2]

        a0, _ = brent_minimize(outer, m.min_core_area, b - min_rest, tol=1e-6)
        a1, a2, _ = best_cache_split(a0)
        return ChipConfig(n=n, a0=a0, a1=a1, a2=a2)

    def refine_newton(self, config: ChipConfig) -> ChipConfig:
        """Polish an area split with the KKT Newton solver (Eq. 13).

        Falls back to the input configuration if Newton diverges or walks
        outside the feasible box (e.g. when a minimum-size bound is
        active, where the interior KKT system has no root).
        """
        n = config.n
        lam0 = -self.lagrangian.dq_da0(config.a0) / n
        x0 = np.array([config.a0, config.a1, config.a2, lam0])
        try:
            res = self.lagrangian.solve(n, x0, raise_on_failure=False)
        except InvalidParameterError:
            return config
        if not res.converged:
            return config
        a0, a1, a2, _ = (float(v) for v in res.x)
        m = self.machine
        if (a0 < m.min_core_area or a1 < m.min_cache_area
                or a2 < m.min_cache_area):
            return config
        candidate = ChipConfig(n=n, a0=a0, a1=a1, a2=a2)
        old_q = self.lagrangian.per_instruction_time(
            config.a0, config.a1, config.a2)
        new_q = self.lagrangian.per_instruction_time(a0, a1, a2)
        return candidate if new_q <= old_q else config

    # ----- evaluation -----------------------------------------------------
    def evaluate(self, n: int, *, newton_polish: bool = False) -> DesignPoint:
        """Optimal design point for a fixed core count ``n``."""
        config = self.area_split(n)
        if newton_polish:
            config = self.refine_newton(config)
        cpi = float(pollack_cpi(config.a0, self.machine.pollack_k0,
                                self.machine.pollack_phi0))
        amat = float(self.camat_model.amat(config.a1, config.a2))
        camat = amat / self.app.concurrency
        jd = self.lagrangian.objective(config)
        w = float(self.app.g(float(n))) * self.app.ic0
        return DesignPoint(config=config, cpi_exe=cpi, amat=amat,
                           camat=camat, problem_size=w, execution_time=jd)

    def sweep(self, ns: "np.ndarray | list[int]") -> list[DesignPoint]:
        """Evaluate a list of core counts (the Figs. 8-11 sweeps)."""
        return [self.evaluate(int(n)) for n in ns]

    # ----- the full optimization (Fig. 6) ---------------------------------
    def optimize(self, *, n_min: int = 1, n_max: "int | None" = None,
                 record_curve: bool = False) -> OptimizationResult:
        """Run the case-split optimization over the integer ``N``.

        Parameters
        ----------
        n_min, n_max:
            Core-count search range; ``n_max`` defaults to the largest
            feasible count under the machine's minimum areas.
        record_curve:
            Also record a geometric sample of design points along N.
        """
        if n_max is None:
            n_max = self.budget.max_feasible_cores()
        if n_max < n_min:
            raise InvalidParameterError(
                f"empty N range [{n_min}, {n_max}]")
        regime = self.app.g.regime()
        case = ("maximize-throughput" if self.app.g.at_least_linear()
                else "minimize-time")
        cache: dict[int, DesignPoint] = {}

        def point(n: int) -> DesignPoint:
            if n not in cache:
                cache[n] = self.evaluate(n)
            return cache[n]

        if case == "maximize-throughput":
            objective = lambda n: -point(n).throughput
        else:
            objective = lambda n: point(n).execution_time
        res = integer_minimize(objective, n_min, n_max)
        best = point(int(res.x))
        curve: tuple[DesignPoint, ...] = ()
        if record_curve:
            ns = np.unique(np.clip(np.round(
                np.geomspace(max(n_min, 1), n_max, 48)).astype(int),
                n_min, n_max))
            curve = tuple(point(int(n)) for n in ns)
        return OptimizationResult(best=best, regime=regime, case=case,
                                  evaluations=len(cache), curve=curve)
