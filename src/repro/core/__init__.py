"""The C2-Bound model (paper Section III).

The model couples three ingredients:

1. the C-AMAT-based execution-time formula (Eq. 7),
2. Sun-Ni memory-bounded scaling of the problem size (Eqs. 8-10), and
3. physical silicon constraints — Pollack's rule (Eq. 11) and the fixed
   area budget (Eq. 12) —

into a constrained optimization (Eq. 13) whose solution is the optimal
core count ``N`` and per-core area split ``(A0, A1, A2)``.

Public entry points
-------------------
- :class:`ApplicationProfile` / :class:`MachineParameters` — inputs.
- :class:`ChipConfig` / :class:`DesignPoint` — outputs.
- :class:`CAMATModel` — C-AMAT as a function of cache areas.
- :class:`C2BoundOptimizer` — the optimization of Eq. 13 with the paper's
  case split on ``g(N)`` vs ``O(N)``.
- :func:`execution_time` / :func:`objective_jd` — Eq. 7 / Eq. 10.
"""

from repro.core.params import ApplicationProfile, MachineParameters
from repro.core.chip import ChipConfig
from repro.core.constraints import AreaBudget, pollack_cpi
from repro.core.camat_model import CAMATModel, HierarchyLatencies
from repro.core.objective import (
    cpu_time,
    data_stall_time_amat,
    data_stall_time_camat,
    execution_time,
    generalized_objective,
    objective_jd,
)
from repro.core.lagrange import LagrangianSystem
from repro.core.optimizer import C2BoundOptimizer, DesignPoint, OptimizationResult
from repro.core.asymmetric import AsymmetricDesign, AsymmetricOptimizer
from repro.core.energy import (
    EnergyAwareOptimizer,
    EnergyReport,
    PowerModel,
    energy_of_design,
)
from repro.core.thermal import (
    ThermallyConstrainedOptimizer,
    ThermalModel,
    ThermalReport,
)
from repro.core.multiphase import (
    MultiPhaseOptimizer,
    MultiPhaseResult,
    PhaseWeight,
)

__all__ = [
    "ApplicationProfile",
    "MachineParameters",
    "ChipConfig",
    "AreaBudget",
    "pollack_cpi",
    "CAMATModel",
    "HierarchyLatencies",
    "cpu_time",
    "data_stall_time_amat",
    "data_stall_time_camat",
    "execution_time",
    "generalized_objective",
    "objective_jd",
    "LagrangianSystem",
    "C2BoundOptimizer",
    "DesignPoint",
    "OptimizationResult",
    # extensions (paper Section VII)
    "AsymmetricDesign",
    "AsymmetricOptimizer",
    "PowerModel",
    "EnergyReport",
    "energy_of_design",
    "EnergyAwareOptimizer",
    "ThermalModel",
    "ThermalReport",
    "ThermallyConstrainedOptimizer",
    "PhaseWeight",
    "MultiPhaseResult",
    "MultiPhaseOptimizer",
]
