"""Execution-time formulas and the optimization objective (Eqs. 5-10).

Chain of refinements, exactly as in the paper:

- Eq. 5  ``CPU-time = IC * (CPI_exe + data-stall) * cycle-time``
- Eq. 6  ``data-stall = f_mem * AMAT``          (locality only)
- Eq. 7  ``T = IC * (CPI_exe + f_mem * C-AMAT * (1 - overlap)) * cycle``
- Eq. 8  ``J_D = T_1 + g(N) * T_N / N``          (Sun-Ni scaling)
- Eq. 10 the combined objective used for optimization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.laws.gfunction import GFunction

__all__ = [
    "cpu_time",
    "data_stall_time_amat",
    "data_stall_time_camat",
    "execution_time",
    "objective_jd",
    "generalized_objective",
]


def data_stall_time_amat(f_mem: float, amat_value: float) -> float:
    """Eq. 6: per-instruction stall cycles under the sequential model."""
    _check_fraction("f_mem", f_mem)
    if amat_value < 0:
        raise InvalidParameterError(f"AMAT must be >= 0, got {amat_value}")
    return f_mem * amat_value


def data_stall_time_camat(f_mem: float, camat_value: float,
                          overlap_ratio: float = 0.0) -> float:
    """Concurrency-aware stall: ``f_mem * C-AMAT * (1 - overlapRatio)``.

    ``overlap_ratio`` is the Eq. 7 compute/memory overlap
    (``overlapRatio_{c-m}``): the fraction of memory-active cycles hidden
    under useful computation.
    """
    _check_fraction("f_mem", f_mem)
    if not 0.0 <= overlap_ratio < 1.0:
        raise InvalidParameterError(
            f"overlap ratio must be in [0,1), got {overlap_ratio}")
    if camat_value < 0:
        raise InvalidParameterError(f"C-AMAT must be >= 0, got {camat_value}")
    return f_mem * camat_value * (1.0 - overlap_ratio)


def cpu_time(ic: float, cpi_exe: float, data_stall: float,
             cycle_time: float = 1.0) -> float:
    """Eq. 5: sequential CPU time from per-instruction components."""
    if ic <= 0:
        raise InvalidParameterError(f"IC must be positive, got {ic}")
    if cpi_exe <= 0:
        raise InvalidParameterError(f"CPI_exe must be positive, got {cpi_exe}")
    if data_stall < 0:
        raise InvalidParameterError(f"stall must be >= 0, got {data_stall}")
    if cycle_time <= 0:
        raise InvalidParameterError(
            f"cycle time must be positive, got {cycle_time}")
    return ic * (cpi_exe + data_stall) * cycle_time


def execution_time(ic: float, cpi_exe: float, f_mem: float,
                   camat_value: float, overlap_ratio: float = 0.0,
                   cycle_time: float = 1.0) -> float:
    """Eq. 7: single-processor execution time with C-AMAT stalls."""
    stall = data_stall_time_camat(f_mem, camat_value, overlap_ratio)
    return cpu_time(ic, cpi_exe, stall, cycle_time)


def objective_jd(
    ic0: float,
    cpi_exe: "float | np.ndarray",
    f_mem: float,
    camat_value: "float | np.ndarray",
    f_seq: float,
    g: "GFunction | float | np.ndarray",
    n: "int | float | np.ndarray",
    overlap_ratio: float = 0.0,
    cycle_time: float = 1.0,
) -> "float | np.ndarray":
    """Eq. 10: the execution-time objective ``J_D``.

    ``J_D = IC0 * (CPI_exe + f_mem*C-AMAT*(1-ov)) *
    (f_seq + g(N)*(1-f_seq)/N) * cycle-time``.

    Broadcasts over arrays of ``n`` / ``cpi_exe`` / ``camat_value`` for
    sweep-style evaluation (Figs. 8-9).
    """
    if ic0 <= 0:
        raise InvalidParameterError(f"IC0 must be positive, got {ic0}")
    _check_fraction("f_mem", f_mem)
    _check_fraction("f_seq", f_seq)
    if not 0.0 <= overlap_ratio < 1.0:
        raise InvalidParameterError(
            f"overlap ratio must be in [0,1), got {overlap_ratio}")
    if cycle_time <= 0:
        raise InvalidParameterError(
            f"cycle time must be positive, got {cycle_time}")
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 1):
        raise InvalidParameterError("N must be >= 1")
    g_vals = np.asarray(g(n_arr) if callable(g) else g, dtype=float)
    per_instr = (np.asarray(cpi_exe, dtype=float)
                 + f_mem * np.asarray(camat_value, dtype=float)
                 * (1.0 - overlap_ratio))
    if np.any(per_instr <= 0):
        raise InvalidParameterError("per-instruction time must be positive")
    scaling = f_seq + g_vals * (1.0 - f_seq) / n_arr
    out = ic0 * per_instr * scaling * cycle_time
    if np.isscalar(n) and out.ndim == 0:
        return float(out)
    return out


def generalized_objective(
    times_by_degree: Sequence[float],
    g: GFunction,
) -> float:
    """The paper's generalized form ``J_D = sum_i g(i) * T_i / i``.

    ``times_by_degree[i-1]`` is ``T_i``: the *sequential* execution time
    of the workload portion whose parallel degree is ``i``.  Eq. 8 is the
    special case where only ``T_1`` and ``T_N`` are nonzero, with the
    serial portion unscaled (``g(1) = 1``).
    """
    times = np.asarray(list(times_by_degree), dtype=float)
    if times.ndim != 1 or times.size == 0:
        raise InvalidParameterError("need at least one degree")
    if np.any(times < 0):
        raise InvalidParameterError("portion times must be >= 0")
    degrees = np.arange(1, times.size + 1, dtype=float)
    g_vals = np.asarray(g(degrees), dtype=float)
    return float(np.sum(g_vals * times / degrees))


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must be in [0,1], got {value}")
