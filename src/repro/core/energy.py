"""Energy extension (paper Section VII future work).

"The object function in Eq. 10 can be reshaped to achieve a balance
among performance, power, energy and temperature."  This module supplies
the standard CMOS-style chip power model used by the Amdahl's-law energy
corollaries the paper cites (Woo & Lee; Cho & Melhem):

- dynamic power proportional to active silicon area,
- static (leakage) power proportional to *all* powered area,
- idle cores burn only leakage (fraction ``idle_leakage``).

The energy of a run is ``E = P_active * T_busy + P_idle * T_idle``
evaluated over the serial and parallel phases of the Eq. 10 schedule,
and the multi-objective knob is the classic ``E * T^w`` family
(``w = 0`` minimizes energy, ``w = 1`` EDP, ``w = 2`` ED²P).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import ChipConfig
from repro.core.optimizer import C2BoundOptimizer, DesignPoint
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.solvers import integer_minimize

__all__ = ["PowerModel", "EnergyReport", "energy_of_design",
           "EnergyAwareOptimizer"]


@dataclass(frozen=True)
class PowerModel:
    """Area-proportional chip power model.

    Attributes
    ----------
    dynamic_per_area:
        Dynamic power per active area unit (W/unit).
    static_per_area:
        Leakage per powered area unit (W/unit).
    idle_leakage:
        Fraction of dynamic power an idle-but-powered core still burns
        (clock/gating inefficiency), in ``[0, 1]``.
    shared_power:
        Constant power of the shared uncore (NoC, memory controllers).
    """

    dynamic_per_area: float = 1.0
    static_per_area: float = 0.1
    idle_leakage: float = 0.1
    shared_power: float = 5.0

    def __post_init__(self) -> None:
        if self.dynamic_per_area < 0 or self.static_per_area < 0:
            raise InvalidParameterError("power densities must be >= 0")
        if not 0.0 <= self.idle_leakage <= 1.0:
            raise InvalidParameterError(
                f"idle leakage must be in [0,1], got {self.idle_leakage}")
        if self.shared_power < 0:
            raise InvalidParameterError("shared power must be >= 0")

    def core_power(self, config: ChipConfig, active: bool) -> float:
        """Power of one core (logic + private caches)."""
        area = config.per_core_area
        static = self.static_per_area * area
        dynamic = self.dynamic_per_area * area
        return static + (dynamic if active else self.idle_leakage * dynamic)

    def chip_power(self, config: ChipConfig, active_cores: int) -> float:
        """Total chip power with ``active_cores`` of ``config.n`` busy."""
        if not 0 <= active_cores <= config.n:
            raise InvalidParameterError(
                f"active cores {active_cores} outside [0, {config.n}]")
        busy = active_cores * self.core_power(config, True)
        idle = (config.n - active_cores) * self.core_power(config, False)
        return busy + idle + self.shared_power


@dataclass(frozen=True)
class EnergyReport:
    """Energy decomposition of one design point's run.

    Attributes
    ----------
    serial_energy:
        Energy of the serial phase (one core busy, rest idle).
    parallel_energy:
        Energy of the parallel phase (all cores busy).
    execution_time:
        Total time (== the design point's Eq. 10 value).
    """

    serial_energy: float
    parallel_energy: float
    execution_time: float

    @property
    def total_energy(self) -> float:
        return self.serial_energy + self.parallel_energy

    @property
    def average_power(self) -> float:
        if self.execution_time == 0:
            return 0.0
        return self.total_energy / self.execution_time

    def objective(self, time_weight: float = 1.0) -> float:
        """``E * T^w``: 0 = energy, 1 = EDP, 2 = ED^2P."""
        if time_weight < 0:
            raise InvalidParameterError(
                f"time weight must be >= 0, got {time_weight}")
        return self.total_energy * self.execution_time ** time_weight


def energy_of_design(point: DesignPoint, app: ApplicationProfile,
                     machine: MachineParameters,
                     power: PowerModel) -> EnergyReport:
    """Energy of executing ``app`` on a design point.

    The Eq. 10 schedule splits into a serial phase (duration
    ``f_seq``-share of the time scaling) and a parallel phase; the power
    model integrates over both.
    """
    n = point.config.n
    g_n = point.problem_size / app.ic0
    scale = app.f_seq + g_n * (1.0 - app.f_seq) / n
    if scale <= 0:
        raise InvalidParameterError("degenerate time scaling")
    serial_frac = app.f_seq / scale
    t_serial = point.execution_time * serial_frac
    t_parallel = point.execution_time - t_serial
    p_serial = power.chip_power(point.config, active_cores=1)
    p_parallel = power.chip_power(point.config, active_cores=n)
    return EnergyReport(
        serial_energy=p_serial * t_serial,
        parallel_energy=p_parallel * t_parallel,
        execution_time=point.execution_time,
    )


class EnergyAwareOptimizer:
    """Minimize ``E * T^w`` over the core count (Eq. 10 + power model).

    Reuses the C2-Bound area-split machinery per candidate ``N``; the
    energy objective replaces the paper's pure-performance case split
    (an energy-optimal design exists even for case-I workloads because
    leakage grows with core count).
    """

    def __init__(self, app: ApplicationProfile, machine: MachineParameters,
                 power: "PowerModel | None" = None) -> None:
        self.app = app
        self.machine = machine
        self.power = power if power is not None else PowerModel()
        self._inner = C2BoundOptimizer(app, machine)

    def evaluate(self, n: int) -> tuple[DesignPoint, EnergyReport]:
        """Design point + energy report for ``n`` cores."""
        point = self._inner.evaluate(n)
        report = energy_of_design(point, self.app, self.machine, self.power)
        return point, report

    def optimize(self, *, time_weight: float = 1.0, n_min: int = 1,
                 n_max: "int | None" = None) -> tuple[DesignPoint, EnergyReport]:
        """Search the integer ``N`` axis for the ``E * T^w`` optimum."""
        if n_max is None:
            n_max = self._inner.budget.max_feasible_cores()
        cache: dict[int, tuple[DesignPoint, EnergyReport]] = {}

        def objective(n: int) -> float:
            if n not in cache:
                cache[n] = self.evaluate(n)
            return cache[n][1].objective(time_weight)

        res = integer_minimize(objective, n_min, n_max)
        return cache[int(res.x)]
