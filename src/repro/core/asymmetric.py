"""Asymmetric CMP extension (paper Section VII: "The extension of
C2-Bound to asymmetric CMP DSE is straightforward").

Following Hill & Marty's asymmetric topology (one large core plus many
identical small cores), the sequential portion runs on the large core and
the parallel portion runs on everything:

    T = IC0 * cycle * [ f_seq * q_big
                        + g(N_eff) * (1 - f_seq) / N_eff * q_small ]

where ``q_x = CPI_exe(A_x) + f_mem * C-AMAT_x * (1 - overlap)`` and the
parallel side's effective width counts the big core as
``perf_big / perf_small`` small-core equivalents.  The area constraint
(Eq. 12 generalized) is

    A = (A_big + A1_big + A2_big)
        + N_small * (A0 + A1 + A2) + Ac.

The optimizer reuses the symmetric machinery: for a fixed
``(big-core budget, N_small)`` pair the two per-core splits are solved
independently (the objective is separable), then the outer pair is
searched on a grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.camat_model import CAMATModel
from repro.core.chip import ChipConfig
from repro.core.lagrange import LagrangianSystem
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.solvers import brent_minimize

__all__ = ["AsymmetricDesign", "AsymmetricOptimizer"]


@dataclass(frozen=True)
class AsymmetricDesign:
    """An asymmetric design point: one big core + ``n_small`` small ones.

    Attributes
    ----------
    big:
        The large core's area split (a ``ChipConfig`` with ``n == 1``).
    small:
        The small cores' per-core split (``n == n_small``).
    execution_time:
        The asymmetric objective value.
    problem_size:
        ``g(N_eff) * IC0``.
    """

    big: ChipConfig
    small: ChipConfig
    execution_time: float
    problem_size: float

    @property
    def n_small(self) -> int:
        return self.small.n

    @property
    def throughput(self) -> float:
        return self.problem_size / self.execution_time

    def total_area(self, shared_area: float) -> float:
        """Generalized Eq. 12 for the asymmetric floorplan."""
        return (self.big.per_core_area
                + self.small.cores_area + shared_area)


class AsymmetricOptimizer:
    """Optimize an asymmetric CMP under the C2-Bound objective."""

    def __init__(self, app: ApplicationProfile, machine: MachineParameters,
                 camat_model: "CAMATModel | None" = None) -> None:
        self.app = app
        self.machine = machine
        self.camat_model = camat_model if camat_model is not None else CAMATModel()
        self.lagrangian = LagrangianSystem(app, machine, self.camat_model)

    # ----- per-budget area split (shared with the symmetric path) ------
    def _split_budget(self, budget: float) -> tuple[float, float, float, float]:
        """Best (a0, a1, a2, q) for one core given an area budget."""
        m = self.machine
        min_rest = 2.0 * m.min_cache_area
        if budget <= m.min_core_area + min_rest:
            raise InvalidParameterError(
                f"budget {budget:.4f} below the minimum core footprint")

        def cache_split(a0: float) -> tuple[float, float, float]:
            rest = budget - a0
            lo = m.min_cache_area
            hi = rest - m.min_cache_area
            if hi <= lo:
                a1 = rest / 2.0
                return a1, rest - a1, self.lagrangian.per_instruction_time(
                    a0, a1, rest - a1)
            a1, q = brent_minimize(
                lambda v: self.lagrangian.per_instruction_time(
                    a0, v, rest - v), lo, hi, tol=1e-6)
            return a1, rest - a1, q

        a0, _ = brent_minimize(lambda v: cache_split(v)[2],
                               m.min_core_area, budget - min_rest, tol=1e-6)
        a1, a2, q = cache_split(a0)
        return a0, a1, a2, q

    def evaluate(self, big_budget: float, n_small: int) -> AsymmetricDesign:
        """Evaluate one (big-core budget, small-core count) pair."""
        if n_small < 1:
            raise InvalidParameterError(
                f"need >= 1 small core, got {n_small}")
        m = self.machine
        remaining = m.core_budget_area - big_budget
        if remaining <= 0:
            raise InvalidParameterError(
                f"big-core budget {big_budget} exhausts the chip")
        small_budget = remaining / n_small
        b0, b1, b2, q_big = self._split_budget(big_budget)
        s0, s1, s2, q_small = self._split_budget(small_budget)
        app = self.app
        # Parallel side: the big core contributes q_small/q_big
        # small-core equivalents of throughput.
        n_eff = n_small + q_small / q_big
        g_n = float(app.g(max(n_eff, 1.0)))
        time = app.ic0 * m.cycle_time * (
            app.f_seq * q_big
            + g_n * (1.0 - app.f_seq) * q_small / n_eff)
        return AsymmetricDesign(
            big=ChipConfig(n=1, a0=b0, a1=b1, a2=b2),
            small=ChipConfig(n=n_small, a0=s0, a1=s1, a2=s2),
            execution_time=time,
            problem_size=g_n * app.ic0,
        )

    def optimize(self, *, n_max: "int | None" = None,
                 budget_points: int = 12) -> AsymmetricDesign:
        """Grid-search the (big budget, N_small) plane.

        Uses the same case split as the symmetric optimizer: throughput
        for ``g(N) >= O(N)``, time otherwise.
        """
        m = self.machine
        total = m.core_budget_area
        min_core = m.min_core_area + 2 * m.min_cache_area
        if n_max is None:
            n_max = max(int(total / min_core) - 1, 1)
        maximize_throughput = self.app.g.at_least_linear()
        best: "AsymmetricDesign | None" = None
        big_budgets = np.geomspace(min_core * 1.01, total * 0.5,
                                   budget_points)
        n_grid = np.unique(np.clip(np.round(
            np.geomspace(1, n_max, 24)).astype(int), 1, n_max))
        for big_budget in big_budgets:
            for n_small in n_grid:
                small_budget = (total - big_budget) / int(n_small)
                if small_budget <= min_core:
                    continue
                design = self.evaluate(float(big_budget), int(n_small))
                if best is None:
                    best = design
                elif maximize_throughput:
                    if design.throughput > best.throughput:
                        best = design
                elif design.execution_time < best.execution_time:
                    best = design
        if best is None:
            raise InvalidParameterError(
                "no feasible asymmetric design in the search grid")
        return best
