"""Physical constraints of the optimization (paper Section III-B).

- Pollack's rule (Eq. 11): core performance grows with the square root of
  its complexity (area), so ``CPI_exe = k0 * A0^{-1/2} + phi0``.
- The silicon budget (Eq. 12): ``A = N(A0 + A1 + A2) + Ac``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chip import ChipConfig
from repro.core.params import MachineParameters
from repro.errors import InvalidParameterError

__all__ = ["pollack_cpi", "pollack_core_area", "AreaBudget"]


def pollack_cpi(
    a0: "float | np.ndarray",
    k0: float = 1.0,
    phi0: float = 0.2,
) -> "float | np.ndarray":
    """Eq. 11: ``CPI_exe = k0 * A0^{-1/2} + phi0``.

    Parameters
    ----------
    a0:
        Core-logic area (scalar or array), ``> 0``.
    k0, phi0:
        Microarchitecture constants (``k0 > 0``, ``phi0 >= 0``).
    """
    a = np.asarray(a0, dtype=float)
    if np.any(a <= 0):
        raise InvalidParameterError("core area must be positive")
    if k0 <= 0:
        raise InvalidParameterError(f"k0 must be positive, got {k0}")
    if phi0 < 0:
        raise InvalidParameterError(f"phi0 must be >= 0, got {phi0}")
    out = k0 / np.sqrt(a) + phi0
    return float(out) if np.isscalar(a0) else out


def pollack_core_area(cpi_exe: float, k0: float = 1.0, phi0: float = 0.2) -> float:
    """Invert Eq. 11: the core area achieving a target ``CPI_exe``."""
    if cpi_exe <= phi0:
        raise InvalidParameterError(
            f"CPI_exe={cpi_exe} unreachable (floor is phi0={phi0})")
    return (k0 / (cpi_exe - phi0)) ** 2


@dataclass(frozen=True)
class AreaBudget:
    """The Eq. 12 constraint ``N(A0+A1+A2) + Ac <= A``.

    The paper treats it as an equality at the optimum (the Lagrangian
    multiplier is active); this class provides both the residual used by
    the Newton solver and feasibility checks used by grid methods.
    """

    machine: MachineParameters

    def residual(self, config: ChipConfig) -> float:
        """``N(A0+A1+A2) + Ac - A`` (zero at an active constraint)."""
        return (config.total_area(self.machine.shared_area)
                - self.machine.total_area)

    def is_feasible(self, config: ChipConfig, *, tol: float = 1e-9) -> bool:
        """Whether the configuration fits the chip (with minimum sizes)."""
        m = self.machine
        return (self.residual(config) <= tol
                and config.a0 >= m.min_core_area - tol
                and config.a1 >= m.min_cache_area - tol
                and config.a2 >= m.min_cache_area - tol)

    def per_core_budget(self, n: int) -> float:
        """``(A - Ac) / N`` — per-core area when the constraint is active."""
        if n < 1:
            raise InvalidParameterError(f"core count must be >= 1, got {n}")
        return self.machine.core_budget_area / n

    def max_feasible_cores(self) -> int:
        """Largest ``N`` for which minimum-sized cores fit."""
        return self.machine.max_cores
