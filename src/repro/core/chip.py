"""Chip configurations — the decision variables of Eq. 13.

A :class:`ChipConfig` is the symmetric-CMP skeleton the paper optimizes:
core count ``N`` and the per-core silicon split ``(A0, A1, A2)``.  The
remaining microarchitecture parameters refined by simulation in the APS
flow (issue width, ROB size) live in
:class:`repro.sim.config.CoreMicroConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["ChipConfig"]


@dataclass(frozen=True)
class ChipConfig:
    """A symmetric CMP design point.

    Attributes
    ----------
    n:
        Number of cores, ``>= 1``.
    a0:
        Core-logic area per core (excluding caches), ``> 0``.
    a1:
        Private (L1) cache area per core, ``> 0``.
    a2:
        L2 cache area allocated per core, ``> 0``.
    """

    n: int
    a0: float
    a1: float
    a2: float

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidParameterError(f"core count must be >= 1, got {self.n}")
        if self.a0 <= 0 or self.a1 <= 0 or self.a2 <= 0:
            raise InvalidParameterError(
                f"areas must be positive, got ({self.a0}, {self.a1}, {self.a2})")

    @property
    def per_core_area(self) -> float:
        """``A0 + A1 + A2``."""
        return self.a0 + self.a1 + self.a2

    @property
    def cores_area(self) -> float:
        """``N * (A0 + A1 + A2)`` — the variable part of Eq. 12."""
        return self.n * self.per_core_area

    def total_area(self, shared_area: float) -> float:
        """Eq. 12's left-hand side: ``N(A0+A1+A2) + Ac``."""
        if shared_area < 0:
            raise InvalidParameterError(
                f"shared area must be >= 0, got {shared_area}")
        return self.cores_area + shared_area
