"""Multi-phase / multi-programmed optimization (paper Eq. 8 generalized).

"As the parallel degree i can be from 1 to N, Eq. (8) can be generalized
... in real CMP DSE we have implemented the generalized version."

A real execution is a weighted mixture of phases, each with its own
``f_mem``, concurrency and scale function (the paper's Fig. 7 setting,
and the phase behaviour Section IV adapts to).  One chip must serve the
whole mixture, so the design objective is the weighted per-work cost

    J = sum_i  w_i * q_i(A0, A1, A2) * scale_i(N) / g_i(N)

with ``q_i`` the phase's per-instruction time and ``scale_i`` the
Sun-Ni time scaling.  Dividing by ``g_i`` makes the objective a cost
per unit of (scaled) work, which is finite and comparable across both
optimization regimes — it reduces to time minimization for fixed-size
phases and to inverse throughput for scalable ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.camat_model import CAMATModel
from repro.core.chip import ChipConfig
from repro.core.constraints import AreaBudget
from repro.core.lagrange import LagrangianSystem
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.solvers import brent_minimize, integer_minimize

__all__ = ["PhaseWeight", "MultiPhaseResult", "MultiPhaseOptimizer"]


@dataclass(frozen=True)
class PhaseWeight:
    """One phase of the mixture.

    Attributes
    ----------
    profile:
        The phase's application profile.
    weight:
        Fraction of dynamic instructions spent in this phase, ``> 0``.
    """

    profile: ApplicationProfile
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise InvalidParameterError(
                f"phase weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class MultiPhaseResult:
    """Outcome of a multi-phase optimization.

    Attributes
    ----------
    config:
        The single chip configuration serving every phase.
    cost:
        The weighted per-work cost at the optimum.
    per_phase_cost:
        Each phase's contribution (already weighted).
    """

    config: ChipConfig
    cost: float
    per_phase_cost: tuple[float, ...]


class MultiPhaseOptimizer:
    """Optimize one chip for a weighted mixture of phases."""

    def __init__(self, phases: Sequence[PhaseWeight],
                 machine: MachineParameters,
                 camat_model: "CAMATModel | None" = None) -> None:
        if not phases:
            raise InvalidParameterError("need at least one phase")
        total = sum(p.weight for p in phases)
        self.phases = tuple(PhaseWeight(p.profile, p.weight / total)
                            for p in phases)
        self.machine = machine
        model = camat_model if camat_model is not None else CAMATModel()
        self._systems = [LagrangianSystem(p.profile, machine, model)
                         for p in self.phases]
        self._budget = AreaBudget(machine)

    # ----- objective --------------------------------------------------------
    def phase_costs(self, config: ChipConfig) -> tuple[float, ...]:
        """Weighted per-work cost of each phase at a configuration."""
        costs = []
        for phase, system in zip(self.phases, self._systems):
            q = system.per_instruction_time(config.a0, config.a1, config.a2)
            app = phase.profile
            g_n = float(app.g(float(config.n)))
            scale = app.f_seq + g_n * (1.0 - app.f_seq) / config.n
            costs.append(phase.weight * q * scale / g_n)
        return tuple(costs)

    def cost(self, config: ChipConfig) -> float:
        """The mixture objective."""
        return float(sum(self.phase_costs(config)))

    # ----- optimization -----------------------------------------------------
    def area_split(self, n: int) -> ChipConfig:
        """Optimal shared split for ``n`` cores (nested Brent on the
        weighted per-instruction time)."""
        m = self.machine
        b = self._budget.per_core_budget(n)
        min_rest = 2.0 * m.min_cache_area
        if b <= m.min_core_area + min_rest:
            raise InvalidParameterError(
                f"N={n} infeasible: per-core budget {b:.4f} too small")

        def weighted_q(a0: float, a1: float, a2: float) -> float:
            return sum(p.weight * s.per_instruction_time(a0, a1, a2)
                       for p, s in zip(self.phases, self._systems))

        def best_cache_split(a0: float) -> tuple[float, float, float]:
            rest = b - a0
            lo = m.min_cache_area
            hi = rest - m.min_cache_area
            if hi <= lo:
                a1 = rest / 2.0
                return a1, rest - a1, weighted_q(a0, a1, rest - a1)
            a1, q = brent_minimize(
                lambda v: weighted_q(a0, v, rest - v), lo, hi, tol=1e-6)
            return a1, rest - a1, q

        a0, _ = brent_minimize(lambda v: best_cache_split(v)[2],
                               m.min_core_area, b - min_rest, tol=1e-6)
        a1, a2, _ = best_cache_split(a0)
        return ChipConfig(n=n, a0=a0, a1=a1, a2=a2)

    def optimize(self, *, n_min: int = 1,
                 n_max: "int | None" = None) -> MultiPhaseResult:
        """Search the integer N axis for the mixture optimum."""
        if n_max is None:
            n_max = self._budget.max_feasible_cores()
        cache: dict[int, ChipConfig] = {}

        def objective(n: int) -> float:
            if n not in cache:
                cache[n] = self.area_split(n)
            return self.cost(cache[n])

        res = integer_minimize(objective, n_min, n_max)
        config = cache[int(res.x)]
        return MultiPhaseResult(
            config=config,
            cost=self.cost(config),
            per_phase_cost=self.phase_costs(config),
        )
