"""C-AMAT as a function of the cache-area allocation.

This module supplies the coupling that makes Eq. 13 a genuine trade-off:
giving area to cores (``A0``) lowers ``CPI_exe`` by Pollack's rule while
giving area to caches (``A1``, ``A2``) lowers miss rates and hence
C-AMAT.  The latency stack is a two-level hierarchy like the paper's
simulated i7-style machine:

    AMAT  = H + MR1(cap(A1)) * AMP,
    AMP   = L2_hit + MR2(cap(A2)) * DRAM
    C-AMAT = AMAT / C                       (Eq. 3 rearranged)

with the equivalent Eq. 2 decomposition ``C_H = C_M = C``, ``pMR = MR``,
``pAMP = AMP`` (the uniform-concurrency reading used by the paper's
analytic sweeps, Figs. 8-11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.camat.camat import CAMATParameters
from repro.capacity.area import AreaModel
from repro.capacity.missrate import PowerLawMissRate
from repro.errors import InvalidParameterError

__all__ = ["HierarchyLatencies", "CAMATModel"]


@dataclass(frozen=True)
class HierarchyLatencies:
    """Latency stack of the two-level hierarchy (cycles).

    Defaults follow the Intel Core-i7-like machine the paper simulates
    (L1 ~3 cycles, LLC ~15, DRAM ~200).
    """

    l1_hit: float = 3.0
    l2_hit: float = 15.0
    dram: float = 200.0

    def __post_init__(self) -> None:
        if not 0 < self.l1_hit <= self.l2_hit <= self.dram:
            raise InvalidParameterError(
                "latencies must satisfy 0 < L1 <= L2 <= DRAM, got "
                f"({self.l1_hit}, {self.l2_hit}, {self.dram})")


@dataclass(frozen=True)
class CAMATModel:
    """Map cache areas (and concurrency ``C``) to AMAT / C-AMAT.

    Attributes
    ----------
    latencies:
        Hit/miss latency stack.
    l1_curve, l2_curve:
        Miss-rate-vs-capacity curves for the private L1 and the per-core
        L2 slice.  ``l2_curve`` gives the L2 *local* miss rate.
    area_model:
        Area-to-capacity conversion shared by both levels.
    """

    latencies: HierarchyLatencies = field(
        default_factory=lambda: HierarchyLatencies(l1_hit=3.0, l2_hit=15.0,
                                                   dram=300.0))
    l1_curve: PowerLawMissRate = field(default_factory=lambda: PowerLawMissRate(
        base_miss_rate=0.15, base_capacity_kib=32.0, alpha=0.5,
        compulsory_floor=1e-3))
    l2_curve: PowerLawMissRate = field(default_factory=lambda: PowerLawMissRate(
        base_miss_rate=0.08, base_capacity_kib=512.0, alpha=0.5,
        compulsory_floor=5e-3))
    area_model: AreaModel = field(default_factory=AreaModel)

    # ----- latency components ------------------------------------------------
    def l1_miss_rate(self, a1: "float | np.ndarray") -> "float | np.ndarray":
        """``MR1`` at the L1 capacity bought by area ``a1``."""
        return self.l1_curve.miss_rate(self.area_model.capacity_kib(a1))

    def l2_miss_rate(self, a2: "float | np.ndarray") -> "float | np.ndarray":
        """``MR2`` (local) at the L2 capacity bought by area ``a2``."""
        return self.l2_curve.miss_rate(self.area_model.capacity_kib(a2))

    def avg_miss_penalty(self, a2: "float | np.ndarray") -> "float | np.ndarray":
        """``AMP = L2_hit + MR2 * DRAM`` in cycles."""
        return self.latencies.l2_hit + self.l2_miss_rate(a2) * self.latencies.dram

    def amat(self, a1: "float | np.ndarray",
             a2: "float | np.ndarray") -> "float | np.ndarray":
        """Eq. 1 with capacity-dependent miss rates."""
        return self.latencies.l1_hit + self.l1_miss_rate(a1) * self.avg_miss_penalty(a2)

    def camat(self, a1: "float | np.ndarray", a2: "float | np.ndarray",
              concurrency: float) -> "float | np.ndarray":
        """``C-AMAT = AMAT / C`` (Eq. 3)."""
        if concurrency < 1.0:
            raise InvalidParameterError(
                f"concurrency must be >= 1, got {concurrency}")
        return self.amat(a1, a2) / concurrency

    def as_camat_params(self, a1: float, a2: float,
                        concurrency: float) -> CAMATParameters:
        """Eq. 2 decomposition under uniform concurrency.

        Sets ``C_H = C_M = C``, ``pMR = MR1`` and ``pAMP = AMP`` so that
        the bundle's ``value`` equals :meth:`camat` exactly.
        """
        if concurrency < 1.0:
            raise InvalidParameterError(
                f"concurrency must be >= 1, got {concurrency}")
        return CAMATParameters(
            hit_time=self.latencies.l1_hit,
            hit_concurrency=concurrency,
            pure_miss_rate=float(self.l1_miss_rate(a1)),
            pure_avg_miss_penalty=float(self.avg_miss_penalty(a2)),
            miss_concurrency=concurrency,
        )
