"""The Lagrangian of Eq. 13 and its stationarity (KKT) system.

For a fixed core count ``N`` the decision variables are the per-core
areas and the multiplier, ``x = (A0, A1, A2, lambda)``, minimizing

    L = J_D(A0, A1, A2; N) + lambda * (N*(A0+A1+A2) + Ac - A).

``J_D`` (Eq. 10) factorizes as ``K(N) * (CPI_exe(A0) + S * AMAT(A1, A2))``
with ``K(N) = IC0 * (f_seq + g(N)(1-f_seq)/N) * cycle`` and
``S = f_mem * (1 - overlap) / C``, so the partial derivatives have closed
forms through Pollack's rule and the power-law miss curves.  The system is
solved with :func:`repro.solvers.newton_solve`; Section III-C's
observation — ``dL/dN > 0`` iff ``g(N) >= O(N)`` — is exposed as
:meth:`LagrangianSystem.dJ_dN` plus the regime predicate on ``g``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.camat_model import CAMATModel
from repro.core.chip import ChipConfig
from repro.core.constraints import pollack_cpi
from repro.core.objective import objective_jd
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.solvers import NewtonResult, newton_solve

__all__ = ["LagrangianSystem"]


@dataclass(frozen=True)
class LagrangianSystem:
    """Stationarity system of Eq. 13 for a fixed ``N``."""

    app: ApplicationProfile
    machine: MachineParameters
    camat_model: CAMATModel

    # ----- objective pieces ---------------------------------------------------
    def scaling_factor(self, n: int) -> float:
        """``K(N)/IC0``: the Sun-Ni time-scaling of Eq. 10."""
        if n < 1:
            raise InvalidParameterError(f"N must be >= 1, got {n}")
        g_n = float(self.app.g(float(n)))
        return self.app.f_seq + g_n * (1.0 - self.app.f_seq) / n

    def stall_scale(self) -> float:
        """``S = f_mem * (1 - overlap) / C`` applied to AMAT."""
        return (self.app.f_mem * (1.0 - self.app.overlap_ratio)
                / self.app.concurrency)

    def per_instruction_time(self, a0: float, a1: float, a2: float) -> float:
        """``CPI_exe(A0) + S * AMAT(A1, A2)`` in cycles.

        Pure-scalar fast path: this is the innermost function of the
        nested area search, called thousands of times per optimization, so
        it avoids NumPy scalar overhead (see the profiling guidance in the
        project's HPC style notes).
        """
        if a0 <= 0 or a1 <= 0 or a2 <= 0:
            raise InvalidParameterError(
                f"areas must be positive, got ({a0}, {a1}, {a2})")
        m = self.machine
        cpi = m.pollack_k0 / math.sqrt(a0) + m.pollack_phi0
        cm = self.camat_model
        density = cm.area_model.kib_per_area_unit
        c1 = cm.l1_curve
        c2 = cm.l2_curve
        mr1 = c1.base_miss_rate * (a1 * density / c1.base_capacity_kib) ** (-c1.alpha)
        mr1 = min(max(mr1, c1.compulsory_floor), 1.0)
        mr2 = c2.base_miss_rate * (a2 * density / c2.base_capacity_kib) ** (-c2.alpha)
        mr2 = min(max(mr2, c2.compulsory_floor), 1.0)
        amat = cm.latencies.l1_hit + mr1 * (cm.latencies.l2_hit
                                            + mr2 * cm.latencies.dram)
        return cpi + self.stall_scale() * amat

    def objective(self, config: ChipConfig) -> float:
        """Eq. 10's ``J_D`` at a full design point."""
        cpi = pollack_cpi(config.a0, self.machine.pollack_k0,
                          self.machine.pollack_phi0)
        camat = self.camat_model.camat(config.a1, config.a2,
                                       self.app.concurrency)
        return float(objective_jd(
            ic0=self.app.ic0, cpi_exe=cpi, f_mem=self.app.f_mem,
            camat_value=camat, f_seq=self.app.f_seq, g=self.app.g,
            n=config.n, overlap_ratio=self.app.overlap_ratio,
            cycle_time=self.machine.cycle_time))

    # ----- analytic partials --------------------------------------------------
    def dq_da0(self, a0: float) -> float:
        """d(per-instr time)/dA0 = -k0/2 * A0^{-3/2} (Pollack)."""
        if a0 <= 0:
            raise InvalidParameterError(f"A0 must be positive, got {a0}")
        return -0.5 * self.machine.pollack_k0 * a0 ** (-1.5)

    def dq_da1(self, a1: float, a2: float) -> float:
        """d(per-instr time)/dA1 through the L1 miss curve.

        Uses the smooth (unclipped) power law; zero outside the
        power-law's active range, matching the clipped curve.
        """
        m = self.camat_model
        cap1 = m.area_model.capacity_kib(a1)
        mr1 = float(m.l1_curve.miss_rate(cap1))
        if mr1 <= m.l1_curve.compulsory_floor or mr1 >= 1.0:
            return 0.0
        # d MR1/d A1 = -alpha * MR1 / A1 (power law in capacity == in area)
        dmr1 = -m.l1_curve.alpha * mr1 / a1
        return self.stall_scale() * dmr1 * float(m.avg_miss_penalty(a2))

    def dq_da2(self, a1: float, a2: float) -> float:
        """d(per-instr time)/dA2 through the L2 miss curve."""
        m = self.camat_model
        cap2 = m.area_model.capacity_kib(a2)
        mr2 = float(m.l2_curve.miss_rate(cap2))
        if mr2 <= m.l2_curve.compulsory_floor or mr2 >= 1.0:
            return 0.0
        dmr2 = -m.l2_curve.alpha * mr2 / a2
        return (self.stall_scale() * float(m.l1_miss_rate(a1))
                * dmr2 * m.latencies.dram)

    # ----- KKT residual ---------------------------------------------------
    def residual(self, x: np.ndarray, n: int) -> np.ndarray:
        """Stationarity residual at ``x = (A0, A1, A2, lambda)``.

        The three gradient rows are divided by ``K(N) * IC0 * cycle`` (a
        positive constant absorbed into ``lambda``), which keeps the
        system well scaled across ``N``.
        """
        a0, a1, a2, lam = (float(v) for v in x)
        if min(a0, a1, a2) <= 0:
            # Push the solver back into the domain with a large residual.
            return np.full(4, 1e6, dtype=float)
        n_term = float(n)
        return np.array([
            self.dq_da0(a0) + lam * n_term,
            self.dq_da1(a1, a2) + lam * n_term,
            self.dq_da2(a1, a2) + lam * n_term,
            n_term * (a0 + a1 + a2) + self.machine.shared_area
            - self.machine.total_area,
        ])

    def solve(self, n: int, x0: "np.ndarray | None" = None,
              **newton_kwargs) -> NewtonResult:
        """Solve the KKT system for fixed ``N`` with damped Newton.

        The default initial guess splits the per-core budget evenly and
        seeds ``lambda`` from the A0 gradient.
        """
        budget = self.machine.core_budget_area / n
        if budget <= (self.machine.min_core_area
                      + 2 * self.machine.min_cache_area):
            raise InvalidParameterError(
                f"N={n} leaves no feasible per-core budget ({budget:.4f})")
        if x0 is None:
            a = budget / 3.0
            lam0 = -self.dq_da0(a) / n
            x0 = np.array([a, a, a, lam0])
        return newton_solve(lambda x: self.residual(x, n), x0, **newton_kwargs)

    # ----- N-direction analysis ------------------------------------------
    def dJ_dN(self, config: ChipConfig, *, step: float = 1e-3) -> float:
        """Numerical ``dJ_D/dN`` at fixed areas (Section III-C analysis).

        Positive for all ``N`` iff the workload scales at least linearly
        (``g(N) >= O(N)``) — the paper's case-I criterion.
        """
        n = float(config.n)
        h = max(step * n, step)

        def jd(n_val: float) -> float:
            g_n = float(self.app.g(n_val))
            scale = self.app.f_seq + g_n * (1.0 - self.app.f_seq) / n_val
            q = self.per_instruction_time(config.a0, config.a1, config.a2)
            return self.app.ic0 * q * scale * self.machine.cycle_time

        return (jd(n + h) - jd(max(n - h, 1.0))) / (n + h - max(n - h, 1.0))
