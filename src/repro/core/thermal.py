"""Thermal extension (paper Section VII: "energy consumption and
temperature can be considered for multi-objective exploration").

A steady-state lumped thermal model in the style the paper's ref [35]
(Huang et al., "Exploring the thermal impact on manycore processor
performance") argues for:

- a core's dynamic power grows superlinearly with its area
  (``P_dyn = p0 * A0^gamma``, gamma > 1: aggressive cores spend
  disproportionate power on speculation and wide issue), so *big cores
  run hotter per mm^2*;
- tile temperature is ambient plus thermal resistance times local power
  density, plus a chip-level heat-spreading term;
- a design is thermally feasible iff its hottest tile stays below
  ``t_max``.

:class:`ThermallyConstrainedOptimizer` layers the constraint onto the
C2-Bound optimization: candidate designs whose hottest tile exceeds the
limit are rejected, which caps the big-core area and pushes optima
toward more, cooler cores — the many-core thermal argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import ChipConfig
from repro.core.optimizer import C2BoundOptimizer, DesignPoint
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.solvers import integer_minimize

__all__ = ["ThermalModel", "ThermalReport", "ThermallyConstrainedOptimizer"]


@dataclass(frozen=True)
class ThermalModel:
    """Steady-state lumped thermal model.

    Attributes
    ----------
    ambient:
        Ambient/package temperature (deg C).
    r_local:
        Thermal resistance of a tile to the spreader
        (deg C per W/area-unit of local density).
    r_chip:
        Chip-wide resistance (deg C per W/area-unit of average density).
    p0:
        Core dynamic power coefficient (W at A0 = 1).
    gamma:
        Superlinearity of core power in area (> 1: big cores hotter).
    cache_power_density:
        SRAM power per area unit (W/unit) — far below core logic.
    """

    ambient: float = 45.0
    r_local: float = 18.0
    r_chip: float = 6.0
    p0: float = 1.0
    gamma: float = 1.3
    cache_power_density: float = 0.08

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise InvalidParameterError(
                f"gamma must exceed 1 (superlinear power), got {self.gamma}")
        if min(self.r_local, self.r_chip, self.p0) <= 0:
            raise InvalidParameterError(
                "thermal resistances and p0 must be positive")
        if self.cache_power_density < 0:
            raise InvalidParameterError("cache power density must be >= 0")

    # ----- power ----------------------------------------------------------
    def core_power(self, a0: float) -> float:
        """Dynamic power of one core's logic (W)."""
        if a0 <= 0:
            raise InvalidParameterError(f"core area must be positive, got {a0}")
        return self.p0 * a0 ** self.gamma

    def tile_power(self, config: ChipConfig) -> float:
        """Power of one core tile (logic + private caches)."""
        return (self.core_power(config.a0)
                + self.cache_power_density * (config.a1 + config.a2))

    def chip_power(self, config: ChipConfig) -> float:
        """Total core-tile power across the chip."""
        return config.n * self.tile_power(config)

    # ----- temperature ------------------------------------------------------
    def tile_temperature(self, config: ChipConfig,
                         total_area: float) -> float:
        """Steady-state temperature of the hottest (core) tile."""
        if total_area <= 0:
            raise InvalidParameterError(
                f"total area must be positive, got {total_area}")
        local_density = self.tile_power(config) / config.per_core_area
        chip_density = self.chip_power(config) / total_area
        return (self.ambient + self.r_local * local_density
                + self.r_chip * chip_density)


@dataclass(frozen=True)
class ThermalReport:
    """Thermal evaluation of one design point."""

    hottest_tile: float
    chip_power: float
    feasible: bool


class ThermallyConstrainedOptimizer:
    """C2-Bound optimization under a peak-temperature constraint."""

    def __init__(self, app: ApplicationProfile, machine: MachineParameters,
                 thermal: "ThermalModel | None" = None, *,
                 t_max: float = 95.0) -> None:
        if t_max <= 0:
            raise InvalidParameterError(f"t_max must be positive, got {t_max}")
        self.app = app
        self.machine = machine
        self.thermal = thermal if thermal is not None else ThermalModel()
        self.t_max = t_max
        self._inner = C2BoundOptimizer(app, machine)

    def report(self, point: DesignPoint) -> ThermalReport:
        """Thermal evaluation of a design point."""
        temp = self.thermal.tile_temperature(point.config,
                                             self.machine.total_area)
        return ThermalReport(
            hottest_tile=temp,
            chip_power=self.thermal.chip_power(point.config),
            feasible=temp <= self.t_max,
        )

    def evaluate(self, n: int) -> tuple[DesignPoint, ThermalReport]:
        """Design point + thermal report for ``n`` cores."""
        point = self._inner.evaluate(n)
        return point, self.report(point)

    def optimize(self, *, n_min: int = 1,
                 n_max: "int | None" = None) -> tuple[DesignPoint, ThermalReport]:
        """Best thermally feasible design (case split as in Fig. 6).

        Raises :class:`InvalidParameterError` if no feasible design
        exists in the range.
        """
        if n_max is None:
            n_max = self._inner.budget.max_feasible_cores()
        maximize_throughput = self.app.g.at_least_linear()
        cache: dict[int, tuple[DesignPoint, ThermalReport]] = {}

        def objective(n: int) -> float:
            if n not in cache:
                cache[n] = self.evaluate(n)
            point, rep = cache[n]
            if not rep.feasible:
                return float("inf")
            return (-point.throughput if maximize_throughput
                    else point.execution_time)

        res = integer_minimize(objective, n_min, n_max)
        point, rep = cache[int(res.x)]
        if not rep.feasible:
            raise InvalidParameterError(
                f"no thermally feasible design in N = [{n_min}, {n_max}] "
                f"under t_max = {self.t_max} C")
        return point, rep
