"""Input parameter bundles for the C2-Bound model.

The paper's APS flow (Fig. 5) starts from application characterization:
``f_mem``, ``C-AMAT`` (or the concurrency ``C``), ``f_seq`` and the scale
function ``g`` are measured from traces (our
:class:`repro.camat.TraceAnalyzer` / :mod:`repro.detector`) or supplied
directly for analytic sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import InvalidParameterError
from repro.laws.gfunction import GFunction, PowerLawG

__all__ = ["ApplicationProfile", "MachineParameters"]


@dataclass(frozen=True)
class ApplicationProfile:
    """Application-side inputs of the model.

    Attributes
    ----------
    name:
        Identifier used in reports.
    f_seq:
        Sequential fraction of the dynamic instruction count, ``[0, 1]``.
    f_mem:
        Fraction of instructions that access memory, ``[0, 1]``.
    g:
        Problem-size scale function (Sun-Ni's ``g(N)``).
    concurrency:
        Data-access concurrency ``C = AMAT / C-AMAT`` (Eq. 3), ``>= 1``.
        The paper sweeps C in {1, 4, 8} for Figs. 8-11; when
        characterizing from traces it is measured.
    overlap_ratio:
        ``overlapRatio_{c-m}`` of Eq. 7: the fraction of C-AMAT stall
        cycles hidden under computation, ``[0, 1)``.
    ic0:
        Baseline dynamic instruction count (problem size at ``N = 1``).
    base_working_set_kib:
        Working-set size at the baseline problem size (used by the
        Section V boundedness analysis and the workload generators).
    """

    name: str = "app"
    f_seq: float = 0.05
    f_mem: float = 0.3
    g: GFunction = field(default_factory=lambda: PowerLawG(1.5, name="tmm"))
    concurrency: float = 1.0
    overlap_ratio: float = 0.0
    ic0: float = 1e9
    base_working_set_kib: float = 4096.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.f_seq <= 1.0:
            raise InvalidParameterError(f"f_seq must be in [0,1], got {self.f_seq}")
        if not 0.0 <= self.f_mem <= 1.0:
            raise InvalidParameterError(f"f_mem must be in [0,1], got {self.f_mem}")
        if self.concurrency < 1.0:
            raise InvalidParameterError(
                f"concurrency C must be >= 1, got {self.concurrency}")
        if not 0.0 <= self.overlap_ratio < 1.0:
            raise InvalidParameterError(
                f"overlap ratio must be in [0,1), got {self.overlap_ratio}")
        if self.ic0 <= 0:
            raise InvalidParameterError(f"ic0 must be positive, got {self.ic0}")
        if self.base_working_set_kib <= 0:
            raise InvalidParameterError(
                "base working set must be positive, got "
                f"{self.base_working_set_kib}")

    def with_concurrency(self, c: float) -> "ApplicationProfile":
        """Copy of this profile with a different concurrency ``C``."""
        return replace(self, concurrency=c)


@dataclass(frozen=True)
class MachineParameters:
    """Machine-side inputs of the model.

    Attributes
    ----------
    total_area:
        ``A`` of Eq. 12: total chip area in area units.
    shared_area:
        ``Ac``: area reserved for shared functions (NoC, memory
        controllers, test/debug).
    pollack_k0:
        ``k0`` of Eq. 11: CPI scale of the core microarchitecture.
    pollack_phi0:
        ``phi0`` of Eq. 11: asymptotic CPI floor of an infinitely large
        core.
    cycle_time:
        Clock period in seconds (only scales absolute times).
    min_core_area:
        Smallest manufacturable core, in area units (keeps Eq. 11 finite).
    min_cache_area:
        Smallest cache allocation considered per level.
    kib_per_area_unit:
        SRAM density used to convert cache area to capacity.
    """

    total_area: float = 400.0
    shared_area: float = 40.0
    pollack_k0: float = 1.0
    pollack_phi0: float = 0.2
    cycle_time: float = 1.0
    min_core_area: float = 0.05
    min_cache_area: float = 0.01
    kib_per_area_unit: float = 64.0

    def __post_init__(self) -> None:
        if self.total_area <= 0:
            raise InvalidParameterError(
                f"total area must be positive, got {self.total_area}")
        if not 0.0 <= self.shared_area < self.total_area:
            raise InvalidParameterError(
                f"shared area must be in [0, total), got {self.shared_area}")
        if self.pollack_k0 <= 0:
            raise InvalidParameterError(
                f"pollack k0 must be positive, got {self.pollack_k0}")
        if self.pollack_phi0 < 0:
            raise InvalidParameterError(
                f"pollack phi0 must be >= 0, got {self.pollack_phi0}")
        if self.cycle_time <= 0:
            raise InvalidParameterError(
                f"cycle time must be positive, got {self.cycle_time}")
        if self.min_core_area <= 0 or self.min_cache_area <= 0:
            raise InvalidParameterError("minimum areas must be positive")

    @property
    def core_budget_area(self) -> float:
        """Area available to cores and their caches: ``A - Ac``."""
        return self.total_area - self.shared_area

    @property
    def max_cores(self) -> int:
        """Largest ``N`` whose per-core budget strictly exceeds the
        minimum core footprint (the area split needs interior room)."""
        per_core_min = self.min_core_area + 2.0 * self.min_cache_area
        n = max(int(self.core_budget_area / per_core_min), 1)
        while n > 1 and self.core_budget_area / n <= per_core_min:
            n -= 1
        return n
