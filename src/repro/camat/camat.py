"""C-AMAT formula (paper Eq. 2) and the concurrency ratio (Eq. 3).

``C-AMAT = H/C_H + pMR * pAMP/C_M`` where

- ``C_H``: average hit concurrency (accesses in their hit window per
  hit-active cycle),
- ``pMR``: pure miss rate — fraction of accesses that are *pure* misses
  (own at least one miss cycle with no concurrent hit activity),
- ``pAMP``: average number of pure-miss cycles per pure miss,
- ``C_M``: average pure-miss concurrency.

The concurrency ``C = AMAT / C-AMAT`` (Eq. 3) is >= 1 in well-formed
systems; ``C = 1`` recovers sequential AMAT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.camat.amat import AMATParameters
from repro.errors import InvalidParameterError

__all__ = ["CAMATParameters", "camat", "concurrency_ratio"]


@dataclass(frozen=True)
class CAMATParameters:
    """Parameters of Eq. 2.

    Attributes
    ----------
    hit_time:
        ``H``, cycles, ``> 0`` (same meaning as in AMAT).
    hit_concurrency:
        ``C_H >= 1`` (multi-port / multi-bank / pipelined caches).
    pure_miss_rate:
        ``pMR`` in ``[0, 1]``; always ``<= MR``.
    pure_avg_miss_penalty:
        ``pAMP >= 0``, pure-miss cycles per pure miss.
    miss_concurrency:
        ``C_M >= 1`` (non-blocking caches / MSHRs), defined whenever there
        is at least one pure miss cycle.
    """

    hit_time: float
    hit_concurrency: float
    pure_miss_rate: float
    pure_avg_miss_penalty: float
    miss_concurrency: float

    def __post_init__(self) -> None:
        if self.hit_time <= 0:
            raise InvalidParameterError(
                f"hit time must be positive, got {self.hit_time}")
        if self.hit_concurrency < 1.0:
            raise InvalidParameterError(
                f"C_H must be >= 1, got {self.hit_concurrency}")
        if not 0.0 <= self.pure_miss_rate <= 1.0:
            raise InvalidParameterError(
                f"pMR must be in [0, 1], got {self.pure_miss_rate}")
        if self.pure_avg_miss_penalty < 0:
            raise InvalidParameterError(
                f"pAMP must be >= 0, got {self.pure_avg_miss_penalty}")
        if self.miss_concurrency < 1.0:
            raise InvalidParameterError(
                f"C_M must be >= 1, got {self.miss_concurrency}")

    @property
    def value(self) -> float:
        """``H/C_H + pMR * pAMP / C_M`` in cycles per access."""
        return (self.hit_time / self.hit_concurrency
                + self.pure_miss_rate * self.pure_avg_miss_penalty
                / self.miss_concurrency)

    @classmethod
    def sequential(cls, params: AMATParameters) -> "CAMATParameters":
        """The no-concurrency special case (``C = 1``) of a given AMAT.

        Sets ``C_H = C_M = 1``, ``pMR = MR`` and ``pAMP = AMP`` so that
        ``value == AMAT`` (paper Section II-A).
        """
        return cls(hit_time=params.hit_time,
                   hit_concurrency=1.0,
                   pure_miss_rate=params.miss_rate,
                   pure_avg_miss_penalty=params.avg_miss_penalty,
                   miss_concurrency=1.0)


def camat(hit_time: float, hit_concurrency: float, pure_miss_rate: float,
          pure_avg_miss_penalty: float, miss_concurrency: float) -> float:
    """Evaluate Eq. 2 directly."""
    return CAMATParameters(hit_time, hit_concurrency, pure_miss_rate,
                           pure_avg_miss_penalty, miss_concurrency).value


def concurrency_ratio(amat_value: float, camat_value: float) -> float:
    """Data access concurrency ``C = AMAT / C-AMAT`` (Eq. 3)."""
    if amat_value <= 0 or camat_value <= 0:
        raise InvalidParameterError(
            f"AMAT and C-AMAT must be positive, got "
            f"{amat_value} and {camat_value}")
    return amat_value / camat_value
