"""Phase decomposition of a trace's cycle timeline.

The paper computes ``C_H`` from *hit phases*: maximal runs of cycles with
constant, nonzero hit concurrency (Fig. 1 has four hit phases with
concurrencies 2, 4, 3, 1 lasting 2, 1, 2, 1 cycles).  ``C_M`` likewise
comes from *pure-miss phases* over cycles with outstanding misses but no
hit activity.

Phase averages are cycle-weighted, so they agree exactly with the direct
counting used by :class:`repro.camat.analyzer.TraceAnalyzer`; the two
routes are cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.camat.trace import AccessTrace

__all__ = ["Phase", "hit_phases", "pure_miss_phases",
           "hit_activity_timeline", "miss_activity_timeline"]


@dataclass(frozen=True)
class Phase:
    """A maximal constant-concurrency run of cycles.

    Attributes
    ----------
    start:
        First cycle of the phase.
    duration:
        Number of cycles, ``>= 1``.
    concurrency:
        Number of simultaneously active accesses throughout the phase.
    """

    start: int
    duration: int
    concurrency: int

    @property
    def access_cycles(self) -> int:
        """Total access-cycles contributed: ``concurrency * duration``."""
        return self.concurrency * self.duration


def hit_activity_timeline(trace: AccessTrace) -> tuple[int, np.ndarray]:
    """Per-cycle hit concurrency.

    Returns ``(origin, counts)`` where ``counts[c]`` is the number of
    accesses whose hit window covers cycle ``origin + c``.  Computed with
    difference arrays, O(accesses + cycles).
    """
    origin = trace.first_cycle
    span = trace.span
    diff = np.zeros(span + 1, dtype=np.int64)
    np.add.at(diff, trace.starts - origin, 1)
    np.add.at(diff, trace.hit_ends - origin, -1)
    return origin, np.cumsum(diff[:-1])


def miss_activity_timeline(trace: AccessTrace) -> tuple[int, np.ndarray]:
    """Per-cycle count of outstanding misses (miss windows)."""
    origin = trace.first_cycle
    span = trace.span
    diff = np.zeros(span + 1, dtype=np.int64)
    miss_mask = trace.miss_penalties > 0
    np.add.at(diff, trace.hit_ends[miss_mask] - origin, 1)
    np.add.at(diff, trace.miss_ends[miss_mask] - origin, -1)
    return origin, np.cumsum(diff[:-1])


def _phases_from_counts(origin: int, counts: np.ndarray) -> list[Phase]:
    """Split a concurrency timeline into maximal constant nonzero runs."""
    if counts.size == 0:
        return []
    boundaries = np.flatnonzero(np.diff(counts)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [counts.size]))
    phases: list[Phase] = []
    for s, e in zip(starts, ends):
        level = int(counts[s])
        if level > 0:
            phases.append(Phase(start=origin + int(s),
                                duration=int(e - s),
                                concurrency=level))
    return phases


def hit_phases(trace: AccessTrace) -> list[Phase]:
    """Maximal constant-concurrency hit phases (paper Fig. 1)."""
    origin, counts = hit_activity_timeline(trace)
    return _phases_from_counts(origin, counts)


def pure_miss_phases(trace: AccessTrace) -> list[Phase]:
    """Maximal constant-concurrency *pure miss* phases.

    A cycle belongs to a pure-miss phase iff at least one miss is
    outstanding and no access has hit activity in that cycle.
    """
    origin_h, hits = hit_activity_timeline(trace)
    origin_m, misses = miss_activity_timeline(trace)
    assert origin_h == origin_m
    pure = np.where(hits == 0, misses, 0)
    return _phases_from_counts(origin_h, pure)
