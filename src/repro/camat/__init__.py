"""C-AMAT: concurrent average memory access time (paper Section II-A).

This package provides:

- :class:`MemoryAccess` / :class:`AccessTrace` — a cycle-level model of
  overlapped memory accesses (hit lookup window followed by an optional
  miss-penalty window).
- :class:`TraceAnalyzer` — computes every parameter of Eq. 1 and Eq. 2
  (``H, MR, AMP, C_H, C_M, pMR, pAMP``) from a trace, including the *pure
  miss* semantics: a miss cycle is pure iff no access has hit activity in
  that cycle, and a miss access is a pure miss iff it owns at least one
  pure miss cycle.
- :func:`fig1_trace` — the exact five-access example of the paper's
  Fig. 1 (AMAT = 3.8, C-AMAT = 1.6).
- Closed-form helpers :func:`amat`, :func:`camat` and the parameter
  dataclasses used throughout the optimizer.

The central invariant (property-tested in ``tests/camat``):

    C-AMAT == memory-active wall cycles / number of accesses

where a cycle is memory-active iff at least one access is in its hit
window or has a miss outstanding.
"""

from repro.camat.amat import AMATParameters, amat
from repro.camat.camat import CAMATParameters, camat, concurrency_ratio
from repro.camat.trace import AccessTrace, MemoryAccess, fig1_trace
from repro.camat.phases import Phase, hit_phases, pure_miss_phases
from repro.camat.analyzer import TraceAnalyzer, TraceStatistics

__all__ = [
    "AMATParameters",
    "amat",
    "CAMATParameters",
    "camat",
    "concurrency_ratio",
    "MemoryAccess",
    "AccessTrace",
    "fig1_trace",
    "Phase",
    "hit_phases",
    "pure_miss_phases",
    "TraceAnalyzer",
    "TraceStatistics",
]
