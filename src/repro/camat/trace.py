"""Cycle-level memory access traces.

A :class:`MemoryAccess` occupies a *hit window* of ``hit_cycles`` cycles
starting at ``start`` (the cache lookup), followed for misses by a *miss
window* of ``miss_penalty`` cycles.  Overlap between accesses is what
creates hit concurrency (``C_H``) and hides miss cycles (the pure-miss
semantics of C-AMAT, paper Fig. 1).

:func:`fig1_trace` reconstructs the exact example of the paper's Fig. 1:
five accesses, ``H = 3``; accesses 3 and 4 miss with penalties 3 and 1;
access 4's single miss cycle is hidden by access 5's hit window, so only
access 3 is a pure miss, with two pure miss cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TraceError

__all__ = ["MemoryAccess", "AccessTrace", "fig1_trace"]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory access on the cycle timeline.

    Attributes
    ----------
    start:
        First cycle of the hit window (cycles are integers; any origin).
    hit_cycles:
        Length of the hit window, ``>= 1`` (the hit time ``H`` of this
        access).
    miss_penalty:
        Length of the miss window immediately following the hit window;
        ``0`` means the access is a hit.
    address:
        Optional address tag (used by the simulator and workload
        generators; ignored by the analyzer).
    """

    start: int
    hit_cycles: int
    miss_penalty: int = 0
    address: int = 0

    def __post_init__(self) -> None:
        if self.hit_cycles < 1:
            raise TraceError(
                f"hit window must last >= 1 cycle, got {self.hit_cycles}")
        if self.miss_penalty < 0:
            raise TraceError(
                f"miss penalty must be >= 0, got {self.miss_penalty}")

    @property
    def is_miss(self) -> bool:
        """Whether the access is a (conventional) miss."""
        return self.miss_penalty > 0

    @property
    def hit_end(self) -> int:
        """One past the last hit-window cycle."""
        return self.start + self.hit_cycles

    @property
    def miss_end(self) -> int:
        """One past the last miss-window cycle (== hit_end for hits)."""
        return self.hit_end + self.miss_penalty

    @property
    def latency(self) -> int:
        """Total cycles the access is outstanding."""
        return self.hit_cycles + self.miss_penalty


class AccessTrace:
    """An ordered collection of :class:`MemoryAccess` objects.

    The trace also exposes vectorized views (``starts``, ``hit_ends`` …)
    used by :class:`repro.camat.analyzer.TraceAnalyzer` for O(cycles)
    interval counting.
    """

    def __init__(self, accesses: Iterable[MemoryAccess]) -> None:
        self._accesses: tuple[MemoryAccess, ...] = tuple(accesses)
        if not self._accesses:
            raise TraceError("trace must contain at least one access")
        self.starts = np.array([a.start for a in self._accesses], dtype=np.int64)
        self.hit_lengths = np.array(
            [a.hit_cycles for a in self._accesses], dtype=np.int64)
        self.miss_penalties = np.array(
            [a.miss_penalty for a in self._accesses], dtype=np.int64)
        self.hit_ends = self.starts + self.hit_lengths
        self.miss_ends = self.hit_ends + self.miss_penalties

    def __len__(self) -> int:
        return len(self._accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._accesses)

    def __getitem__(self, idx: int) -> MemoryAccess:
        return self._accesses[idx]

    @property
    def accesses(self) -> Sequence[MemoryAccess]:
        """The accesses, in construction order."""
        return self._accesses

    @property
    def first_cycle(self) -> int:
        """Earliest cycle touched by any access."""
        return int(self.starts.min())

    @property
    def last_cycle(self) -> int:
        """One past the latest cycle touched by any access."""
        return int(self.miss_ends.max())

    @property
    def span(self) -> int:
        """Number of cycles between the first and last activity."""
        return self.last_cycle - self.first_cycle

    @classmethod
    def from_arrays(
        cls,
        starts: np.ndarray,
        hit_cycles: np.ndarray,
        miss_penalties: np.ndarray,
        addresses: "np.ndarray | None" = None,
    ) -> "AccessTrace":
        """Build a trace from parallel arrays (fast path for generators)."""
        starts = np.asarray(starts, dtype=np.int64)
        hits = np.asarray(hit_cycles, dtype=np.int64)
        penalties = np.asarray(miss_penalties, dtype=np.int64)
        if not (starts.shape == hits.shape == penalties.shape):
            raise TraceError("parallel arrays must have identical shapes")
        if addresses is None:
            addresses = np.zeros_like(starts)
        return cls(
            MemoryAccess(int(s), int(h), int(p), int(a))
            for s, h, p, a in zip(starts, hits, penalties, addresses))


def fig1_trace() -> AccessTrace:
    """The exact 5-access example of the paper's Fig. 1.

    Layout (cycles 1..8):

    ========  ===========  ============  =========================
    access    hit window   miss window   notes
    ========  ===========  ============  =========================
    1         1-3          —             hit
    2         1-3          —             hit
    3         3-5          6-8           pure miss (cycles 7-8 pure)
    4         3-5          6             hidden by access 5's hit
    5         4-6          —             hit
    ========  ===========  ============  =========================

    Hit phases: concurrency (2, 4, 3, 1) lasting (2, 1, 2, 1) cycles, so
    ``C_H = 15/6 = 5/2``; one pure-miss phase of concurrency 1 lasting 2
    cycles, so ``C_M = 1``, ``pMR = 1/5``, ``pAMP = 2``.  C-AMAT = 1.6,
    AMAT = 3.8.
    """
    return AccessTrace([
        MemoryAccess(start=1, hit_cycles=3, miss_penalty=0),
        MemoryAccess(start=1, hit_cycles=3, miss_penalty=0),
        MemoryAccess(start=3, hit_cycles=3, miss_penalty=3),
        MemoryAccess(start=3, hit_cycles=3, miss_penalty=1),
        MemoryAccess(start=4, hit_cycles=3, miss_penalty=0),
    ])
