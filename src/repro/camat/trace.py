"""Cycle-level memory access traces.

A :class:`MemoryAccess` occupies a *hit window* of ``hit_cycles`` cycles
starting at ``start`` (the cache lookup), followed for misses by a *miss
window* of ``miss_penalty`` cycles.  Overlap between accesses is what
creates hit concurrency (``C_H``) and hides miss cycles (the pure-miss
semantics of C-AMAT, paper Fig. 1).

:class:`AccessTrace` is columnar: the authoritative representation is a
set of parallel int64 arrays (``starts``, ``hit_lengths``,
``miss_penalties``, ``addresses``), which is what
:class:`repro.camat.analyzer.TraceAnalyzer` consumes.  Traces built by
the simulator and the workload generators come in through
:meth:`AccessTrace.from_arrays`, which stores the columns directly with
vectorized validation — no per-access :class:`MemoryAccess` object is
ever materialized on that path.  Object views (``trace[i]``, iteration,
``.accesses``) are built lazily, only when a caller actually asks for
them.

:func:`fig1_trace` reconstructs the exact example of the paper's Fig. 1:
five accesses, ``H = 3``; accesses 3 and 4 miss with penalties 3 and 1;
access 4's single miss cycle is hidden by access 5's hit window, so only
access 3 is a pure miss, with two pure miss cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TraceError

__all__ = ["MemoryAccess", "AccessTrace", "fig1_trace"]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory access on the cycle timeline.

    Attributes
    ----------
    start:
        First cycle of the hit window (cycles are integers; any origin).
    hit_cycles:
        Length of the hit window, ``>= 1`` (the hit time ``H`` of this
        access).
    miss_penalty:
        Length of the miss window immediately following the hit window;
        ``0`` means the access is a hit.
    address:
        Optional address tag (used by the simulator and workload
        generators; ignored by the analyzer).
    """

    start: int
    hit_cycles: int
    miss_penalty: int = 0
    address: int = 0

    def __post_init__(self) -> None:
        if self.hit_cycles < 1:
            raise TraceError(
                f"hit window must last >= 1 cycle, got {self.hit_cycles}")
        if self.miss_penalty < 0:
            raise TraceError(
                f"miss penalty must be >= 0, got {self.miss_penalty}")

    @property
    def is_miss(self) -> bool:
        """Whether the access is a (conventional) miss."""
        return self.miss_penalty > 0

    @property
    def hit_end(self) -> int:
        """One past the last hit-window cycle."""
        return self.start + self.hit_cycles

    @property
    def miss_end(self) -> int:
        """One past the last miss-window cycle (== hit_end for hits)."""
        return self.hit_end + self.miss_penalty

    @property
    def latency(self) -> int:
        """Total cycles the access is outstanding."""
        return self.hit_cycles + self.miss_penalty


class AccessTrace:
    """An ordered collection of memory accesses, stored as columns.

    The vectorized views (``starts``, ``hit_ends`` …) are the primary
    storage, used by :class:`repro.camat.analyzer.TraceAnalyzer` for
    O(cycles) interval counting; per-access :class:`MemoryAccess`
    objects are a lazily materialized convenience view.
    """

    def __init__(self, accesses: Iterable[MemoryAccess]) -> None:
        objs: tuple[MemoryAccess, ...] = tuple(accesses)
        if not objs:
            raise TraceError("trace must contain at least one access")
        self._accesses: "tuple[MemoryAccess, ...] | None" = objs
        self._init_columns(
            np.array([a.start for a in objs], dtype=np.int64),
            np.array([a.hit_cycles for a in objs], dtype=np.int64),
            np.array([a.miss_penalty for a in objs], dtype=np.int64),
            np.array([a.address for a in objs], dtype=np.int64))

    def _init_columns(self, starts: np.ndarray, hit_lengths: np.ndarray,
                      miss_penalties: np.ndarray,
                      addresses: np.ndarray) -> None:
        self.starts = starts
        self.hit_lengths = hit_lengths
        self.miss_penalties = miss_penalties
        self.addresses = addresses
        self.hit_ends = starts + hit_lengths
        self.miss_ends = self.hit_ends + miss_penalties

    def __len__(self) -> int:
        return int(self.starts.size)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._materialize())

    def __getitem__(self, idx):
        return self._materialize()[idx]

    def _materialize(self) -> tuple[MemoryAccess, ...]:
        """The object view, built on first use and cached."""
        if self._accesses is None:
            self._accesses = tuple(
                MemoryAccess(s, h, p, a)
                for s, h, p, a in zip(self.starts.tolist(),
                                      self.hit_lengths.tolist(),
                                      self.miss_penalties.tolist(),
                                      self.addresses.tolist()))
        return self._accesses

    @property
    def accesses(self) -> Sequence[MemoryAccess]:
        """The accesses, in construction order (lazy object view)."""
        return self._materialize()

    @property
    def first_cycle(self) -> int:
        """Earliest cycle touched by any access."""
        return int(self.starts.min())

    @property
    def last_cycle(self) -> int:
        """One past the latest cycle touched by any access."""
        return int(self.miss_ends.max())

    @property
    def span(self) -> int:
        """Number of cycles between the first and last activity."""
        return self.last_cycle - self.first_cycle

    @classmethod
    def from_arrays(
        cls,
        starts: np.ndarray,
        hit_cycles: np.ndarray,
        miss_penalties: np.ndarray,
        addresses: "np.ndarray | None" = None,
    ) -> "AccessTrace":
        """Build a trace from parallel arrays — the columnar fast path.

        The columns are validated vectorized (same rules and error
        messages as :class:`MemoryAccess`) and stored directly; no
        per-access object is created.  This is what the simulator's
        record arrays and the workload generators go through, so trace
        construction is O(1) Python operations regardless of length.
        """
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        hits = np.ascontiguousarray(hit_cycles, dtype=np.int64)
        penalties = np.ascontiguousarray(miss_penalties, dtype=np.int64)
        if not (starts.shape == hits.shape == penalties.shape):
            raise TraceError("parallel arrays must have identical shapes")
        if starts.ndim != 1:
            raise TraceError(
                f"parallel arrays must be 1-D, got {starts.ndim}-D")
        if starts.size == 0:
            raise TraceError("trace must contain at least one access")
        if hits.min() < 1:
            bad = int(hits[hits < 1][0])
            raise TraceError(
                f"hit window must last >= 1 cycle, got {bad}")
        if penalties.min() < 0:
            bad = int(penalties[penalties < 0][0])
            raise TraceError(f"miss penalty must be >= 0, got {bad}")
        if addresses is None:
            addresses = np.zeros_like(starts)
        else:
            addresses = np.ascontiguousarray(addresses, dtype=np.int64)
            if addresses.shape != starts.shape:
                raise TraceError(
                    "parallel arrays must have identical shapes")
        trace = cls.__new__(cls)
        trace._accesses = None
        trace._init_columns(starts, hits, penalties, addresses)
        return trace


def fig1_trace() -> AccessTrace:
    """The exact 5-access example of the paper's Fig. 1.

    Layout (cycles 1..8):

    ========  ===========  ============  =========================
    access    hit window   miss window   notes
    ========  ===========  ============  =========================
    1         1-3          —             hit
    2         1-3          —             hit
    3         3-5          6-8           pure miss (cycles 7-8 pure)
    4         3-5          6             hidden by access 5's hit
    5         4-6          —             hit
    ========  ===========  ============  =========================

    Hit phases: concurrency (2, 4, 3, 1) lasting (2, 1, 2, 1) cycles, so
    ``C_H = 15/6 = 5/2``; one pure-miss phase of concurrency 1 lasting 2
    cycles, so ``C_M = 1``, ``pMR = 1/5``, ``pAMP = 2``.  C-AMAT = 1.6,
    AMAT = 3.8.
    """
    return AccessTrace([
        MemoryAccess(start=1, hit_cycles=3, miss_penalty=0),
        MemoryAccess(start=1, hit_cycles=3, miss_penalty=0),
        MemoryAccess(start=3, hit_cycles=3, miss_penalty=3),
        MemoryAccess(start=3, hit_cycles=3, miss_penalty=1),
        MemoryAccess(start=4, hit_cycles=3, miss_penalty=0),
    ])
