"""Conventional AMAT (paper Eq. 1): ``AMAT = H + MR * AMP``.

AMAT assumes sequential data accesses; it is the ``C = 1`` special case of
C-AMAT where ``C_H = C_M = 1``, ``pMR = MR`` and ``pAMP = AMP``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["AMATParameters", "amat"]


@dataclass(frozen=True)
class AMATParameters:
    """Parameters of Eq. 1.

    Attributes
    ----------
    hit_time:
        ``H``, cache hit time in cycles, ``> 0``.
    miss_rate:
        ``MR``, conventional miss rate in ``[0, 1]``.
    avg_miss_penalty:
        ``AMP``, average miss penalty in cycles, ``>= 0``; defined as the
        sum of all miss latencies divided by the number of misses.
    """

    hit_time: float
    miss_rate: float
    avg_miss_penalty: float

    def __post_init__(self) -> None:
        if self.hit_time <= 0:
            raise InvalidParameterError(
                f"hit time must be positive, got {self.hit_time}")
        if not 0.0 <= self.miss_rate <= 1.0:
            raise InvalidParameterError(
                f"miss rate must be in [0, 1], got {self.miss_rate}")
        if self.avg_miss_penalty < 0:
            raise InvalidParameterError(
                f"miss penalty must be >= 0, got {self.avg_miss_penalty}")

    @property
    def value(self) -> float:
        """``H + MR * AMP`` in cycles per access."""
        return self.hit_time + self.miss_rate * self.avg_miss_penalty


def amat(hit_time: float, miss_rate: float, avg_miss_penalty: float) -> float:
    """Evaluate Eq. 1 directly."""
    return AMATParameters(hit_time, miss_rate, avg_miss_penalty).value
