"""Offline trace analyzer: every AMAT and C-AMAT parameter from a trace.

Implements the paper's Fig. 1 semantics exactly:

- ``H``        mean hit-window length over *all* accesses;
- ``MR``       conventional miss rate;
- ``AMP``      total miss-penalty cycles / number of misses;
- ``C_H``      hit access-cycles / hit-active wall cycles;
- pure miss cycle: a wall cycle with >= 1 outstanding miss and zero hit
  activity;
- pure miss access: a miss owning >= 1 pure miss cycle;
- ``pMR``      pure misses / accesses;
- ``pAMP``     per-access pure-miss cycles / pure misses;
- ``C_M``      per-access pure-miss cycles / pure-miss wall cycles.

These definitions satisfy the fundamental identity

    C-AMAT = H/C_H + pMR*pAMP/C_M = memory-active wall cycles / accesses

because ``H/C_H`` telescopes to hit-active wall cycles per access and the
pure-miss term telescopes to pure-miss wall cycles per access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.camat.amat import AMATParameters
from repro.camat.camat import CAMATParameters, concurrency_ratio
from repro.camat.trace import AccessTrace

__all__ = ["TraceStatistics", "TraceAnalyzer"]


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate statistics of one analyzed trace.

    All counts are exact integers from the cycle timeline; derived metrics
    are exposed as properties so they stay mutually consistent.
    """

    accesses: int
    misses: int
    pure_misses: int
    total_hit_access_cycles: int
    total_miss_penalty_cycles: int
    total_pure_miss_access_cycles: int
    hit_active_wall_cycles: int
    pure_miss_wall_cycles: int
    memory_active_wall_cycles: int
    span_cycles: int

    # ----- Eq. 1 parameters -------------------------------------------------
    @property
    def hit_time(self) -> float:
        """``H``: mean hit-window length per access."""
        return self.total_hit_access_cycles / self.accesses

    @property
    def miss_rate(self) -> float:
        """``MR``: conventional miss rate."""
        return self.misses / self.accesses

    @property
    def avg_miss_penalty(self) -> float:
        """``AMP``: mean penalty per miss (0 if there are no misses)."""
        if self.misses == 0:
            return 0.0
        return self.total_miss_penalty_cycles / self.misses

    @property
    def amat_params(self) -> AMATParameters:
        """Eq. 1 parameter bundle."""
        return AMATParameters(self.hit_time, self.miss_rate,
                              self.avg_miss_penalty)

    @property
    def amat(self) -> float:
        """Eq. 1 value."""
        return self.amat_params.value

    # ----- Eq. 2 parameters -------------------------------------------------
    @property
    def hit_concurrency(self) -> float:
        """``C_H``: hit access-cycles per hit-active wall cycle."""
        if self.hit_active_wall_cycles == 0:
            return 1.0
        return self.total_hit_access_cycles / self.hit_active_wall_cycles

    @property
    def pure_miss_rate(self) -> float:
        """``pMR``: pure misses per access."""
        return self.pure_misses / self.accesses

    @property
    def pure_avg_miss_penalty(self) -> float:
        """``pAMP``: per-access pure-miss cycles per pure miss."""
        if self.pure_misses == 0:
            return 0.0
        return self.total_pure_miss_access_cycles / self.pure_misses

    @property
    def miss_concurrency(self) -> float:
        """``C_M``: per-access pure-miss cycles per pure-miss wall cycle."""
        if self.pure_miss_wall_cycles == 0:
            return 1.0
        return (self.total_pure_miss_access_cycles
                / self.pure_miss_wall_cycles)

    @property
    def camat_params(self) -> CAMATParameters:
        """Eq. 2 parameter bundle."""
        return CAMATParameters(
            hit_time=self.hit_time,
            hit_concurrency=self.hit_concurrency,
            pure_miss_rate=self.pure_miss_rate,
            pure_avg_miss_penalty=self.pure_avg_miss_penalty,
            miss_concurrency=self.miss_concurrency,
        )

    @property
    def camat(self) -> float:
        """Eq. 2 value; equals active wall cycles per access."""
        return self.camat_params.value

    @property
    def concurrency(self) -> float:
        """``C = AMAT / C-AMAT`` (Eq. 3)."""
        return concurrency_ratio(self.amat, self.camat)


class TraceAnalyzer:
    """Compute :class:`TraceStatistics` from an :class:`AccessTrace`.

    The analyzer is stateless; :meth:`analyze` may be called on any number
    of traces.  Runtime is O(accesses log accesses), independent of the
    cycle span: concurrency is constant between consecutive interval
    endpoints, so the per-cycle timeline of
    :mod:`repro.camat.phases` is collapsed into an event sweep over the
    sorted endpoint set, with each segment weighted by its length.  The
    two routes count the same integer cycles and agree exactly (the
    phase-based cross-checks in the test suite pin this).
    """

    def analyze(self, trace: AccessTrace) -> TraceStatistics:
        """Analyze one trace."""
        starts = trace.starts
        hit_ends = trace.hit_ends
        miss_mask = trace.miss_penalties > 0
        miss_lo = hit_ends[miss_mask]
        miss_hi = trace.miss_ends[miss_mask]

        # Breakpoints: every cycle where any concurrency level can
        # change.  Segment k spans [bp[k], bp[k+1]) at constant hit and
        # miss concurrency.
        # Sorted unique endpoints via an argsort + dedupe mask:
        # identical to np.unique, but sidesteps its hash-table path,
        # which measures an order of magnitude slower on these arrays.
        # The sort permutation doubles as the position index — every
        # endpoint's breakpoint rank falls out of the inverse
        # permutation, so no binary searches are needed at all.
        n = starts.size
        endpoints = np.concatenate((starts, hit_ends, miss_hi))
        perm = np.argsort(endpoints, kind="stable")
        ordered = endpoints[perm]
        changed = ordered[1:] != ordered[:-1]
        rank = np.empty(ordered.size, dtype=np.int64)
        rank[0] = 0
        np.cumsum(changed, out=rank[1:])
        pos = np.empty(ordered.size, dtype=np.int64)
        pos[perm] = rank
        bp = ordered[np.concatenate(([True], changed))]
        m = bp.size
        seg_len = np.diff(bp)
        # The concatenation order slices the position array: starts,
        # then hit ends, then miss ends.  Miss windows start where hit
        # windows end, so their lower positions are a mask of the
        # hit-end positions.
        pos_starts = pos[:n]
        pos_hit_ends = pos[n:2 * n]
        pos_miss_lo = pos_hit_ends[miss_mask]
        pos_miss_hi = pos[2 * n:]
        hit_delta = (np.bincount(pos_starts, minlength=m)
                     - np.bincount(pos_hit_ends, minlength=m))
        miss_delta = (np.bincount(pos_miss_lo, minlength=m)
                      - np.bincount(pos_miss_hi, minlength=m))
        hit_on = np.cumsum(hit_delta)[:-1] > 0
        miss_on = np.cumsum(miss_delta)[:-1] > 0
        pure_on = ~hit_on & miss_on

        # Per-access pure-miss cycle counts via a prefix sum of
        # pure-segment lengths; each miss window's endpoints are
        # breakpoints, so its pure-cycle count is one subtraction.
        pure_prefix = np.concatenate(
            ([0], np.cumsum(np.where(pure_on, seg_len, 0))))
        per_miss_pure = pure_prefix[pos_miss_hi] - pure_prefix[pos_miss_lo]

        return TraceStatistics(
            accesses=len(trace),
            misses=int(np.count_nonzero(miss_mask)),
            pure_misses=int(np.count_nonzero(per_miss_pure > 0)),
            total_hit_access_cycles=int(trace.hit_lengths.sum()),
            total_miss_penalty_cycles=int(trace.miss_penalties.sum()),
            total_pure_miss_access_cycles=int(per_miss_pure.sum()),
            hit_active_wall_cycles=int(seg_len[hit_on].sum()),
            pure_miss_wall_cycles=int(seg_len[pure_on].sum()),
            memory_active_wall_cycles=int(seg_len[hit_on | miss_on].sum()),
            span_cycles=trace.span,
        )
