"""Offline trace analyzer: every AMAT and C-AMAT parameter from a trace.

Implements the paper's Fig. 1 semantics exactly:

- ``H``        mean hit-window length over *all* accesses;
- ``MR``       conventional miss rate;
- ``AMP``      total miss-penalty cycles / number of misses;
- ``C_H``      hit access-cycles / hit-active wall cycles;
- pure miss cycle: a wall cycle with >= 1 outstanding miss and zero hit
  activity;
- pure miss access: a miss owning >= 1 pure miss cycle;
- ``pMR``      pure misses / accesses;
- ``pAMP``     per-access pure-miss cycles / pure misses;
- ``C_M``      per-access pure-miss cycles / pure-miss wall cycles.

These definitions satisfy the fundamental identity

    C-AMAT = H/C_H + pMR*pAMP/C_M = memory-active wall cycles / accesses

because ``H/C_H`` telescopes to hit-active wall cycles per access and the
pure-miss term telescopes to pure-miss wall cycles per access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.camat.amat import AMATParameters
from repro.camat.camat import CAMATParameters, concurrency_ratio
from repro.camat.phases import hit_activity_timeline, miss_activity_timeline
from repro.camat.trace import AccessTrace

__all__ = ["TraceStatistics", "TraceAnalyzer"]


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate statistics of one analyzed trace.

    All counts are exact integers from the cycle timeline; derived metrics
    are exposed as properties so they stay mutually consistent.
    """

    accesses: int
    misses: int
    pure_misses: int
    total_hit_access_cycles: int
    total_miss_penalty_cycles: int
    total_pure_miss_access_cycles: int
    hit_active_wall_cycles: int
    pure_miss_wall_cycles: int
    memory_active_wall_cycles: int
    span_cycles: int

    # ----- Eq. 1 parameters -------------------------------------------------
    @property
    def hit_time(self) -> float:
        """``H``: mean hit-window length per access."""
        return self.total_hit_access_cycles / self.accesses

    @property
    def miss_rate(self) -> float:
        """``MR``: conventional miss rate."""
        return self.misses / self.accesses

    @property
    def avg_miss_penalty(self) -> float:
        """``AMP``: mean penalty per miss (0 if there are no misses)."""
        if self.misses == 0:
            return 0.0
        return self.total_miss_penalty_cycles / self.misses

    @property
    def amat_params(self) -> AMATParameters:
        """Eq. 1 parameter bundle."""
        return AMATParameters(self.hit_time, self.miss_rate,
                              self.avg_miss_penalty)

    @property
    def amat(self) -> float:
        """Eq. 1 value."""
        return self.amat_params.value

    # ----- Eq. 2 parameters -------------------------------------------------
    @property
    def hit_concurrency(self) -> float:
        """``C_H``: hit access-cycles per hit-active wall cycle."""
        if self.hit_active_wall_cycles == 0:
            return 1.0
        return self.total_hit_access_cycles / self.hit_active_wall_cycles

    @property
    def pure_miss_rate(self) -> float:
        """``pMR``: pure misses per access."""
        return self.pure_misses / self.accesses

    @property
    def pure_avg_miss_penalty(self) -> float:
        """``pAMP``: per-access pure-miss cycles per pure miss."""
        if self.pure_misses == 0:
            return 0.0
        return self.total_pure_miss_access_cycles / self.pure_misses

    @property
    def miss_concurrency(self) -> float:
        """``C_M``: per-access pure-miss cycles per pure-miss wall cycle."""
        if self.pure_miss_wall_cycles == 0:
            return 1.0
        return (self.total_pure_miss_access_cycles
                / self.pure_miss_wall_cycles)

    @property
    def camat_params(self) -> CAMATParameters:
        """Eq. 2 parameter bundle."""
        return CAMATParameters(
            hit_time=self.hit_time,
            hit_concurrency=self.hit_concurrency,
            pure_miss_rate=self.pure_miss_rate,
            pure_avg_miss_penalty=self.pure_avg_miss_penalty,
            miss_concurrency=self.miss_concurrency,
        )

    @property
    def camat(self) -> float:
        """Eq. 2 value; equals active wall cycles per access."""
        return self.camat_params.value

    @property
    def concurrency(self) -> float:
        """``C = AMAT / C-AMAT`` (Eq. 3)."""
        return concurrency_ratio(self.amat, self.camat)


class TraceAnalyzer:
    """Compute :class:`TraceStatistics` from an :class:`AccessTrace`.

    The analyzer is stateless; :meth:`analyze` may be called on any number
    of traces.  Runtime is O(accesses + span-cycles) using difference-array
    interval counting.
    """

    def analyze(self, trace: AccessTrace) -> TraceStatistics:
        """Analyze one trace."""
        origin, hit_counts = hit_activity_timeline(trace)
        _, miss_counts = miss_activity_timeline(trace)
        pure_cycle_mask = (hit_counts == 0) & (miss_counts > 0)

        # Per-access pure-miss cycle counts, via a prefix sum over the
        # pure-cycle indicator so each access's window is O(1).
        pure_prefix = np.concatenate(
            ([0], np.cumsum(pure_cycle_mask.astype(np.int64))))
        miss_mask = trace.miss_penalties > 0
        lo = trace.hit_ends - origin
        hi = trace.miss_ends - origin
        per_access_pure = np.where(
            miss_mask, pure_prefix[hi] - pure_prefix[lo], 0)

        pure_miss_mask = per_access_pure > 0
        memory_active = int(np.count_nonzero(
            (hit_counts > 0) | (miss_counts > 0)))

        return TraceStatistics(
            accesses=len(trace),
            misses=int(np.count_nonzero(miss_mask)),
            pure_misses=int(np.count_nonzero(pure_miss_mask)),
            total_hit_access_cycles=int(trace.hit_lengths.sum()),
            total_miss_penalty_cycles=int(trace.miss_penalties.sum()),
            total_pure_miss_access_cycles=int(per_access_pure.sum()),
            hit_active_wall_cycles=int(np.count_nonzero(hit_counts > 0)),
            pure_miss_wall_cycles=int(np.count_nonzero(pure_cycle_mask)),
            memory_active_wall_cycles=memory_active,
            span_cycles=trace.span,
        )
