"""``python -m repro.service`` — alias for ``c2bound serve``."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
