"""``c2bound serve`` — the job-server entry point.

Owns its own flag set (dispatched from :mod:`repro.cli` before the
experiment parser).  Typical invocations::

    c2bound serve --state-dir /var/lib/c2bound --port 8080
    c2bound serve --state-dir st --port 0 \\
        --tenant alice:2:16:50000 --tenant bob:1:8: \\
        --queue-depth 32 --max-running 4

``--tenant NAME:CONC:QUEUED[:BUDGET]`` sets a per-tenant quota (an
empty/omitted BUDGET means unlimited evaluations).  ``--port 0`` binds
an ephemeral port and publishes it in ``<state-dir>/server.json``.
Restarting with the same ``--state-dir`` *is* crash recovery.
"""

from __future__ import annotations

import argparse
import asyncio
from pathlib import Path

from repro.errors import InvalidParameterError, ReproError
from repro.service.server import JobServer, serve_until_signalled
from repro.service.state import ServiceConfig, ServiceState
from repro.service.tenants import TenantQuota

__all__ = ["main", "build_config"]


def _parse_tenant(spec: str) -> "tuple[str, TenantQuota]":
    """``NAME:CONC:QUEUED[:BUDGET]`` → (name, quota)."""
    parts = spec.split(":")
    if len(parts) not in (3, 4) or not parts[0]:
        raise InvalidParameterError(
            f"--tenant wants NAME:CONC:QUEUED[:BUDGET], got {spec!r}")
    name = parts[0]
    try:
        conc = int(parts[1])
        queued = int(parts[2])
        budget = int(parts[3]) if len(parts) == 4 and parts[3] else None
    except ValueError as exc:
        raise InvalidParameterError(
            f"--tenant {spec!r}: quota fields must be integers") from exc
    return name, TenantQuota(max_concurrency=conc, max_queued=queued,
                             budget=budget)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="c2bound serve",
        description="Serve sweep/search jobs over HTTP+JSON with "
                    "admission control, graceful degradation and "
                    "crash-tolerant recovery.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8742,
                        help="bind port; 0 picks a free one and records "
                             "it in <state-dir>/server.json")
    parser.add_argument("--state-dir", type=Path, required=True,
                        metavar="DIR",
                        help="durable state: job registry, per-job "
                             "checkpoints and traces (reuse = resume)")
    parser.add_argument("--max-running", type=int, default=2, metavar="N",
                        help="jobs executing concurrently (default 2)")
    parser.add_argument("--job-workers", type=int, default=1, metavar="N",
                        help="process-pool workers inside each job "
                             "(default 1 = inline)")
    parser.add_argument("--queue-depth", type=int, default=64, metavar="N",
                        help="admission queue depth before 429s (default 64)")
    parser.add_argument("--max-pending-kib", type=int, default=8192,
                        metavar="KIB",
                        help="pending-spec memory watermark (default 8192)")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME:CONC:QUEUED[:BUDGET]",
                        help="per-tenant quota (repeatable)")
    parser.add_argument("--default-concurrency", type=int, default=2,
                        metavar="N",
                        help="concurrency quota for unlisted tenants")
    parser.add_argument("--default-queued", type=int, default=16,
                        metavar="N",
                        help="queued-jobs quota for unlisted tenants")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        metavar="N",
                        help="consecutive simulator failures that trip "
                             "the circuit breaker (default 3)")
    parser.add_argument("--breaker-reset-s", type=float, default=30.0,
                        metavar="S",
                        help="seconds an open breaker waits before a "
                             "half-open probe (default 30)")
    parser.add_argument("--sim-cache", type=Path, default=None,
                        metavar="DIR",
                        help="persistent simulation cache shared by all "
                             "jobs (also enables degraded cache hits)")
    parser.add_argument("--write-behind", type=int, default=0, metavar="N",
                        help="buffer N cache puts before flushing to disk "
                             "(flushed on graceful shutdown)")
    return parser


def build_config(args: argparse.Namespace) -> ServiceConfig:
    """Translate parsed flags into a :class:`ServiceConfig`."""
    quotas = dict(_parse_tenant(spec) for spec in args.tenant)
    return ServiceConfig(
        max_depth=args.queue_depth,
        max_pending_bytes=args.max_pending_kib << 10,
        quotas=quotas,
        default_quota=TenantQuota(max_concurrency=args.default_concurrency,
                                  max_queued=args.default_queued),
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset_s)


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for ``c2bound serve``."""
    args = build_parser().parse_args(argv)
    try:
        config = build_config(args)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    if args.sim_cache is not None:
        from repro.sim.cache_store import (
            SimCacheStore,
            install_signal_flush,
            set_default_store,
        )
        set_default_store(SimCacheStore(args.sim_cache,
                                        write_behind=args.write_behind))
        install_signal_flush()
    try:
        state = ServiceState(args.state_dir, config)
        server = JobServer(state, host=args.host, port=args.port,
                           max_running=args.max_running,
                           job_workers=args.job_workers)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    print(f"c2bound serve: state in {args.state_dir}, "
          f"{len(state.jobs)} job(s) replayed "
          f"({sum(1 for j in state.jobs.values() if j.resumed)} resumed)")
    asyncio.run(serve_until_signalled(server))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
