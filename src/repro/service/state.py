"""The job server's synchronous orchestration core.

:class:`ServiceState` ties the admission queue, tenant accounts,
circuit breaker and the durable
:class:`~repro.resilience.job_registry.JobRegistry` into one state
machine with **no asyncio in it** — every transition is a plain method
call, so the whole recovery/accounting surface is drivable from unit
and Hypothesis property tests without an event loop.  The asyncio
shell (:mod:`repro.service.server`) owns scheduling and I/O; this
module owns *truth*:

- admission (:meth:`submit`) — tenant gates, then queue backpressure,
  then the durable ``submit`` record; a job is only acknowledged after
  it is journaled;
- scheduling (:meth:`next_job`) — deterministic ``(priority, seq)``
  order filtered by per-tenant concurrency;
- completion (:meth:`complete` / :meth:`fail`) — terminal registry
  record plus exactly-once budget settlement;
- recovery (construction) — replaying the registry rebuilds finished
  results, re-charges settled budgets idempotently, and re-enqueues
  in-flight jobs with their *original* admission order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import AdmissionError, ServiceError
from repro.obs import get_registry
from repro.resilience.checkpoint import new_run_id
from repro.resilience.job_registry import JobRegistry
from repro.service.breaker import CircuitBreaker
from repro.service.queue import AdmissionQueue, QueueEntry
from repro.service.tenants import TenantAccounts, TenantQuota
from repro.service.wire import JobRequest

__all__ = ["JobRecord", "ServiceConfig", "ServiceState", "TERMINAL_STATES"]

#: Job lifecycle: queued → running → one of the terminal states.
TERMINAL_STATES = ("done", "failed", "timeout", "cancelled")


@dataclass
class JobRecord:
    """One job's live view (the registry holds the durable one)."""

    job_id: str
    tenant: str
    priority: int
    seq: int
    spec: dict
    deadline_s: "float | None" = None
    status: str = "queued"
    result: "dict | None" = None
    charged: int = 0
    error: "str | None" = None
    resumed: bool = False

    def public(self) -> dict:
        """The JSON the HTTP layer serves for this job."""
        out = {"job_id": self.job_id, "tenant": self.tenant,
               "priority": self.priority, "seq": self.seq,
               "status": self.status, "charged": self.charged,
               "resumed": self.resumed}
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class ServiceConfig:
    """Knobs of the orchestration core (the CLI populates this)."""

    max_depth: int = 64
    max_pending_bytes: int = 8 << 20
    quotas: "dict[str, TenantQuota]" = field(default_factory=dict)
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0


class ServiceState:
    """Queue + tenants + breaker + durable registry, crash-recoverable.

    Parameters
    ----------
    state_dir:
        Holds ``jobs.jsonl`` (the registry) and one subdirectory per
        job (checkpoint journal, trace).  Reusing a directory *is* the
        recovery path: the registry is replayed before anything else.
    config:
        Quotas and backpressure knobs.
    clock:
        Monotonic source handed to the breaker (injectable for tests).
    """

    def __init__(self, state_dir: "str | Path",
                 config: "ServiceConfig | None" = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.state_dir = Path(state_dir)
        self.config = config if config is not None else ServiceConfig()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.queue = AdmissionQueue(
            max_depth=self.config.max_depth,
            max_pending_bytes=self.config.max_pending_bytes)
        self.accounts = TenantAccounts(self.config.quotas,
                                       self.config.default_quota)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_after_s=self.config.breaker_reset_s, clock=clock)
        self.jobs: "dict[str, JobRecord]" = {}
        registry = get_registry()
        self._ctr_submitted = registry.counter("service.jobs.submitted")
        self._ctr_completed = registry.counter("service.jobs.completed")
        self._ctr_failed = registry.counter("service.jobs.failed")
        self._ctr_cancelled = registry.counter("service.jobs.cancelled")
        self._ctr_resumed = registry.counter("service.jobs.resumed")
        self._ctr_rejected = registry.counter("service.jobs.rejected")
        self._ctr_degraded = registry.counter("service.degraded.jobs")
        self.registry, replay = JobRegistry.open_resume(
            self.state_dir / "jobs.jsonl")
        self._seq = replay.next_seq
        self._recover(replay)

    # ---- recovery ---------------------------------------------------------

    def _recover(self, replay) -> None:
        """Rebuild live state from the registry's replay view.

        Terminal jobs come back servable with their recorded results
        and settle their budgets through the same idempotent path live
        completions use.  Pending jobs re-enter the queue with their
        original ``(priority, seq)``, so the resumed schedule extends
        the durable admission order.
        """
        for record in replay.submits:
            job = JobRecord(
                job_id=record["job"], tenant=record["tenant"],
                priority=int(record["priority"]), seq=int(record["seq"]),
                spec=dict(record["spec"]),
                deadline_s=record["spec"].get("deadline_s"))
            terminal = replay.terminal.get(job.job_id)
            if terminal is not None:
                job.status = str(terminal.get("status", "done"))
                job.result = terminal.get("result")
                job.charged = int(terminal.get("charged", 0))
                self.accounts.settle(job.tenant, job.job_id, job.charged)
            else:
                job.resumed = True
                self.accounts.on_queued(job.tenant)
                self.queue.restore(QueueEntry(
                    priority=job.priority, seq=job.seq, tenant=job.tenant,
                    job_id=job.job_id, size_bytes=0))
                self._ctr_resumed.inc()
            self.jobs[job.job_id] = job

    # ---- admission --------------------------------------------------------

    def submit(self, request: JobRequest) -> JobRecord:
        """Admit one job (or raise :class:`~repro.errors.AdmissionError`).

        Gate order: tenant quotas first (cheap, per-client), then the
        shared queue's backpressure.  The durable ``submit`` record is
        appended *before* the job is acknowledged, so every job the
        client ever saw accepted survives a crash.
        """
        try:
            self.accounts.admit(request.tenant)
            entry = QueueEntry(
                priority=request.priority, seq=self._seq,
                tenant=request.tenant, job_id=new_run_id(),
                size_bytes=request.size_bytes())
            self.queue.offer(entry)
        except AdmissionError:
            self._ctr_rejected.inc()
            raise
        self._seq += 1
        spec = dict(request.spec)
        if request.deadline_s is not None:
            spec["deadline_s"] = request.deadline_s
        job = JobRecord(job_id=entry.job_id, tenant=request.tenant,
                        priority=entry.priority, seq=entry.seq, spec=spec,
                        deadline_s=request.deadline_s)
        self.registry.append_submit(
            job_id=job.job_id, tenant=job.tenant, priority=job.priority,
            seq=job.seq, spec=spec)
        self.accounts.on_queued(job.tenant)
        self.jobs[job.job_id] = job
        self._ctr_submitted.inc()
        return job

    # ---- scheduling -------------------------------------------------------

    def next_job(self) -> "JobRecord | None":
        """Dequeue the next runnable job (deterministic fair order)."""
        entry = self.queue.pop_runnable(self.accounts.can_run)
        if entry is None:
            return None
        job = self.jobs[entry.job_id]
        self.accounts.on_dequeued(job.tenant)
        self.accounts.on_started(job.tenant)
        job.status = "running"
        return job

    # ---- completion -------------------------------------------------------

    def _require(self, job_id: str) -> JobRecord:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def complete(self, job_id: str, result: dict, *,
                 degraded: bool = False) -> JobRecord:
        """A job finished: journal the terminal record, settle budgets."""
        job = self._require(job_id)
        job.status = "done"
        job.result = dict(result)
        job.charged = int(result.get("evaluations", 0))
        self.registry.append_done(job_id=job.job_id, status="done",
                                  charged=job.charged, result=job.result)
        self.accounts.on_finished(job.tenant)
        self.accounts.settle(job.tenant, job.job_id, job.charged)
        self._ctr_completed.inc()
        if degraded:
            self._ctr_degraded.inc()
        return job

    def fail(self, job_id: str, *, status: str = "failed",
             error: "str | None" = None, charged: int = 0) -> JobRecord:
        """A job ended without a result (failure, timeout)."""
        if status not in ("failed", "timeout"):
            raise ServiceError(f"fail() got non-failure status {status!r}")
        job = self._require(job_id)
        job.status = status
        job.error = error
        job.charged = int(charged)
        self.registry.append_done(job_id=job.job_id, status=status,
                                  charged=job.charged, result=None)
        self.accounts.on_finished(job.tenant)
        self.accounts.settle(job.tenant, job.job_id, job.charged)
        self._ctr_failed.inc()
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job (running jobs finish)."""
        job = self._require(job_id)
        if job.status != "queued" or not self.queue.cancel(job_id):
            return False
        job.status = "cancelled"
        self.registry.append_cancel(job_id=job_id)
        self.accounts.on_dequeued(job.tenant)
        self.accounts.settle(job.tenant, job_id, 0)
        self._ctr_cancelled.inc()
        return True

    # ---- paths & introspection -------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """Per-job artifact directory (checkpoint journal, trace)."""
        return self.state_dir / "jobs" / job_id

    def running_count(self) -> int:
        """Jobs currently executing (all tenants)."""
        return sum(self.accounts.running.values())

    def health(self) -> dict:
        """The ``/healthz`` document: queue, breaker, tenants, jobs."""
        by_status: "dict[str, int]" = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {"ok": True, "queue": self.queue.snapshot(),
                "breaker": self.breaker.snapshot(),
                "tenants": self.accounts.snapshot(),
                "jobs": dict(sorted(by_status.items())),
                "running": self.running_count()}

    def ready(self) -> bool:
        """Whether new submissions currently have a queue slot."""
        return self.queue.depth < self.queue.max_depth

    def close(self) -> None:
        """Close the durable registry (idempotent)."""
        self.registry.close()
