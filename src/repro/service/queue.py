"""Bounded priority admission queue with explicit backpressure.

The server never buffers without bound: admission fails *loudly* (an
:class:`~repro.errors.AdmissionError`, surfaced as HTTP 429 +
``Retry-After``) the moment queue depth or the pending-bytes watermark
would be exceeded.  Gunther's universal-scalability reading of Amdahl
(PAPERS.md) is the design argument: past the contention knee, queueing
more work only grows latency for everyone — shedding is the scalable
response.

Ordering is a pure function of ``(priority, seq)`` — priority first
(0 = most urgent), then durable arrival sequence — with no wall-clock
input, so the schedule a restarted server replays from its registry is
the schedule the crashed server would have run.
:meth:`AdmissionQueue.pop_runnable` additionally skips entries whose
tenant is at its concurrency cap, taking the *earliest eligible* entry;
skipped entries keep their position (deterministic fair scheduling, not
starvation-prone strict priority per tenant).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AdmissionError, InvalidParameterError
from repro.obs import get_registry

__all__ = ["AdmissionQueue", "QueueEntry"]


@dataclass(order=True, frozen=True)
class QueueEntry:
    """One queued job, ordered by ``(priority, seq)``."""

    priority: int
    seq: int
    tenant: str = field(compare=False)
    job_id: str = field(compare=False)
    size_bytes: int = field(compare=False, default=0)


class AdmissionQueue:
    """A bounded binary heap of :class:`QueueEntry`.

    Parameters
    ----------
    max_depth:
        Hard cap on queued jobs; offers beyond it shed with 429.
    max_pending_bytes:
        Watermark on the summed spec sizes of queued jobs — the memory
        a malicious or runaway client could otherwise pin.
    """

    def __init__(self, *, max_depth: int = 64,
                 max_pending_bytes: int = 8 << 20) -> None:
        if max_depth < 1:
            raise InvalidParameterError(
                f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self.max_pending_bytes = int(max_pending_bytes)
        self._heap: "list[QueueEntry]" = []
        self._cancelled: "set[str]" = set()
        self.pending_bytes = 0
        registry = get_registry()
        self._ctr_shed = registry.counter("service.admission.shed")
        self._gauge_depth = registry.gauge("service.queue.depth")

    @property
    def depth(self) -> int:
        """Queued (non-cancelled) entries."""
        return len(self._heap) - len(self._cancelled)

    def retry_after_s(self) -> float:
        """Suggested client back-off, scaled to current depth.

        Deterministic in the queue state (no clock): a fuller queue
        asks clients to stay away longer.
        """
        return round(1.0 + 0.05 * self.depth, 3)

    def offer(self, entry: QueueEntry) -> None:
        """Admit one entry or shed with :class:`~repro.errors.AdmissionError`."""
        if self.depth >= self.max_depth:
            self._ctr_shed.inc()
            raise AdmissionError(
                f"queue full ({self.depth}/{self.max_depth} jobs)",
                reason="queue_full", retry_after_s=self.retry_after_s())
        if self.pending_bytes + entry.size_bytes > self.max_pending_bytes:
            self._ctr_shed.inc()
            raise AdmissionError(
                f"pending specs exceed the {self.max_pending_bytes}-byte "
                "watermark", reason="memory_watermark",
                retry_after_s=self.retry_after_s())
        heapq.heappush(self._heap, entry)
        self.pending_bytes += entry.size_bytes
        self._gauge_depth.set(self.depth)

    def restore(self, entry: QueueEntry) -> None:
        """Re-admit a replayed entry, bypassing the backpressure gates.

        Recovery must never shed a job the crashed server already
        acknowledged — admission was charged once, at original submit
        time.
        """
        heapq.heappush(self._heap, entry)
        self.pending_bytes += entry.size_bytes
        self._gauge_depth.set(self.depth)

    def cancel(self, job_id: str) -> bool:
        """Drop a queued entry by id (lazy: removed when it surfaces)."""
        if any(e.job_id == job_id for e in self._heap) \
                and job_id not in self._cancelled:
            self._cancelled.add(job_id)
            self._gauge_depth.set(self.depth)
            return True
        return False

    def pop_runnable(self, can_run: "Callable[[str], bool]") -> "QueueEntry | None":
        """The earliest ``(priority, seq)`` entry whose tenant may run.

        Entries of tenants at their concurrency cap are skipped but
        keep their position.  Returns ``None`` when nothing is eligible.
        """
        skipped: "list[QueueEntry]" = []
        found: "QueueEntry | None" = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.job_id in self._cancelled:
                self._cancelled.discard(entry.job_id)
                self.pending_bytes -= entry.size_bytes
                continue
            if can_run(entry.tenant):
                found = entry
                self.pending_bytes -= entry.size_bytes
                break
            skipped.append(entry)
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        self._gauge_depth.set(self.depth)
        return found

    def snapshot(self) -> dict:
        """Queue state for ``/healthz``."""
        return {"depth": self.depth, "max_depth": self.max_depth,
                "pending_bytes": self.pending_bytes,
                "max_pending_bytes": self.max_pending_bytes}
