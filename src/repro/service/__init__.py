"""DSE-as-a-service: the crash-tolerant async job server.

``c2bound serve`` turns the evaluator/search stack into a long-lived
multi-tenant HTTP+JSON service (stdlib asyncio only — no third-party
web framework).  The package splits into a *synchronous core* that is
exhaustively testable (including property tests over arbitrary
submit/crash/restart interleavings) and a thin asyncio shell:

- :mod:`repro.service.wire` — the ``c2bound.job/1`` request schema and
  canonical JSON encoding (byte-stable results);
- :mod:`repro.service.queue` — the bounded priority admission queue
  with explicit backpressure (never unbounded buffering);
- :mod:`repro.service.tenants` — per-tenant concurrency/queue/budget
  quotas with exactly-once settlement;
- :mod:`repro.service.breaker` — the circuit breaker guarding the
  simulation tier;
- :mod:`repro.service.state` — the orchestration core tying queue,
  tenants, breaker and the durable
  :class:`~repro.resilience.job_registry.JobRegistry` together;
- :mod:`repro.service.server` — the asyncio HTTP shell
  (``/v1/jobs``, ``/healthz``, ``/readyz``) that runs jobs through
  :func:`repro.dse.jobs.run_job` in executor threads.

Robustness contracts (verified by ``scripts/service_chaos_check.py``
and ``tests/service``): SIGKILL + restart resumes every in-flight job
to bit-identical results with exactly-once tenant budget accounting;
saturation sheds load with 429 + Retry-After; a tripped simulator tier
degrades to cache/analytical answers marked ``degraded`` instead of
erroring.  See ``docs/SERVICE.md``.
"""

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.queue import AdmissionQueue, QueueEntry
from repro.service.state import JobRecord, ServiceConfig, ServiceState
from repro.service.tenants import TenantAccounts, TenantQuota
from repro.service.wire import (
    JOB_SCHEMA,
    RESULT_SCHEMA,
    JobRequest,
    canonical_json,
    parse_job_request,
)

__all__ = [
    "JOB_SCHEMA",
    "RESULT_SCHEMA",
    "JobRequest",
    "canonical_json",
    "parse_job_request",
    "AdmissionQueue",
    "QueueEntry",
    "TenantQuota",
    "TenantAccounts",
    "BreakerState",
    "CircuitBreaker",
    "JobRecord",
    "ServiceConfig",
    "ServiceState",
]
