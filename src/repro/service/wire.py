"""Wire schemas of the job server.

Two documents cross the wire:

``c2bound.job/1`` — a submission::

    {"schema": "c2bound.job/1", "tenant": "acme", "priority": 1,
     "deadline_s": 30.0,
     "job": {"kind": "sweep", "method": "brute",
             "space": {"params": [{"name": "a0", "values": […]}, …]},
             "evaluator": {"type": "surrogate", …},
             "batch_size": 64}}

``c2bound.job-result/1`` — the result document
:func:`repro.dse.jobs.run_job` produces.  Results are rendered with
:func:`canonical_json` (sorted keys, minimal separators, costs as
``repr(float)`` strings), so "bit-identical resume" is a byte equality
over this encoding — the property the chaos gate asserts.

Validation errors raise :class:`~repro.errors.InvalidParameterError`;
the HTTP layer maps them to 400s.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.dse.jobs import RESULT_SCHEMA
from repro.errors import InvalidParameterError

__all__ = ["JOB_SCHEMA", "RESULT_SCHEMA", "JobRequest", "canonical_json",
           "parse_job_request"]

JOB_SCHEMA = "c2bound.job/1"

#: Priorities are small ints; 0 is most urgent.  A narrow range keeps
#: the admission order legible in the registry and forecloses priority
#: inflation arms races between tenants.
MAX_PRIORITY = 9


def canonical_json(obj) -> str:
    """The byte-stable JSON encoding job results are compared in."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobRequest:
    """A validated submission, ready for admission.

    Attributes
    ----------
    tenant:
        Quota identity; every job belongs to exactly one tenant.
    priority:
        ``0`` (most urgent) … ``MAX_PRIORITY``; ties break by arrival
        sequence, so scheduling is a deterministic function of
        ``(priority, seq)``.
    deadline_s:
        The job's overall time budget (``None`` = unbounded), enforced
        end to end: between batches, and clamped into retry backoffs.
    spec:
        The :func:`repro.dse.jobs.run_job` spec (kind/space/evaluator).
    """

    tenant: str
    priority: int
    deadline_s: "float | None"
    spec: dict

    @property
    def evaluator_type(self) -> str:
        """Which tier the job runs on (drives the circuit breaker)."""
        return str((self.spec.get("evaluator") or {}).get("type",
                                                          "surrogate"))

    def size_bytes(self) -> int:
        """The spec's canonical encoded size (memory-watermark unit)."""
        return len(canonical_json(self.spec).encode())


def parse_job_request(payload) -> JobRequest:
    """Validate one ``c2bound.job/1`` submission payload."""
    if not isinstance(payload, dict):
        raise InvalidParameterError("job submission must be a JSON object")
    schema = payload.get("schema", JOB_SCHEMA)
    if schema != JOB_SCHEMA:
        raise InvalidParameterError(
            f"unknown submission schema {schema!r} (expected {JOB_SCHEMA})")
    tenant = payload.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise InvalidParameterError("submission needs a non-empty 'tenant'")
    priority = payload.get("priority", MAX_PRIORITY // 2)
    if not isinstance(priority, int) or isinstance(priority, bool) \
            or not 0 <= priority <= MAX_PRIORITY:
        raise InvalidParameterError(
            f"priority must be an int in [0, {MAX_PRIORITY}], "
            f"got {priority!r}")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) \
                or isinstance(deadline_s, bool) or deadline_s <= 0:
            raise InvalidParameterError(
                f"deadline_s must be > 0 or null, got {deadline_s!r}")
        deadline_s = float(deadline_s)
    spec = payload.get("job")
    if not isinstance(spec, dict):
        raise InvalidParameterError("submission needs a 'job' spec object")
    if not isinstance(spec.get("space"), dict):
        raise InvalidParameterError("job spec needs a 'space' object")
    if "evaluator" in spec and not isinstance(spec["evaluator"], dict):
        raise InvalidParameterError("job 'evaluator' must be an object")
    return JobRequest(tenant=tenant, priority=int(priority),
                      deadline_s=deadline_s, spec=spec)
