"""Circuit breaker guarding the simulation tier.

Repeated :class:`~repro.errors.WorkerCrashError` / timeout failures
mean the simulator tier is unhealthy — OOM-killing workers, a hung
filesystem — and hammering it with more jobs makes recovery slower
("When parallel speedups hit the memory wall", PAPERS.md: past
saturation, added load only adds contention).  The breaker converts
that into an explicit state machine:

- **CLOSED** — healthy; failures count against ``failure_threshold``;
- **OPEN** — tripped; simulator jobs are served *degraded* (cache hits
  + analytic answers, marked ``degraded: true``) instead of erroring;
- **HALF_OPEN** — after ``reset_after_s`` one probe job may try the
  real tier; success closes the breaker, failure re-opens it.

The clock is injectable, so tests (and the Hypothesis harness) drive
every transition deterministically.  Trips are counted as
``service.breaker.trips``.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

from repro.errors import InvalidParameterError
from repro.obs import get_registry

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker with a timed half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip CLOSED → OPEN.
    reset_after_s:
        Seconds in OPEN before one HALF_OPEN probe is allowed.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, *, failure_threshold: int = 3,
                 reset_after_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_after_s <= 0:
            raise InvalidParameterError(
                f"reset_after_s must be > 0, got {reset_after_s}")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0
        self._ctr_trips = get_registry().counter("service.breaker.trips")

    @property
    def state(self) -> BreakerState:
        """Current state (OPEN decays to HALF_OPEN after the reset)."""
        if self._state is BreakerState.OPEN \
                and self._clock() - self._opened_at >= self.reset_after_s:
            self._state = BreakerState.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether the guarded tier may be attempted right now."""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        """A guarded call succeeded: close and reset the failure count."""
        self._state = BreakerState.CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        """A guarded call failed: count it, tripping when the threshold
        is reached (HALF_OPEN probes re-open immediately)."""
        state = self.state
        if state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._failures += 1
        if state is BreakerState.CLOSED \
                and self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self.trips += 1
        self._ctr_trips.inc()

    def snapshot(self) -> dict:
        """Breaker state for ``/healthz``."""
        return {"state": self.state.value, "failures": self._failures,
                "trips": self.trips,
                "failure_threshold": self.failure_threshold}
