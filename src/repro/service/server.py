"""The asyncio HTTP shell of ``c2bound serve``.

Stdlib only: :func:`asyncio.start_server` plus a minimal HTTP/1.1
request parser — no web framework is baked into the image, and none is
needed for a JSON job API.  The shell is deliberately thin: every
decision lives in the synchronous
:class:`~repro.service.state.ServiceState` core, and every *blocking*
operation (running a job, reading a trace file, writing the discovery
file) is pushed through ``loop.run_in_executor`` — the ``C2L205`` lint
rule statically forbids blocking calls inside coroutine bodies in this
package, so the event loop provably never stalls behind a sweep.

Endpoints::

    POST   /v1/jobs            submit (202; 429 + Retry-After on shed)
    GET    /v1/jobs            list jobs
    GET    /v1/jobs/<id>       status + result document
    DELETE /v1/jobs/<id>       cancel a queued job
    GET    /v1/jobs/<id>/trace the job's c2bound.trace/1 progress stream
    GET    /healthz            queue/breaker/tenant/pool state
    GET    /readyz             200 while a queue slot is free, else 503

On start the bound port is written to ``<state_dir>/server.json`` (so
``--port 0`` callers — tests, the chaos harness — can discover it).
Graceful stop (SIGTERM/SIGINT) drains write-behind caches and closes
the registry; SIGKILL is the *tested* path: restart with the same
state directory and every acknowledged job resumes bit-identically.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from functools import partial
from pathlib import Path

from repro.dse.jobs import run_job
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    InvalidParameterError,
    ReproError,
)
from repro.obs import get_registry
from repro.obs.events import JsonlWriter
from repro.resilience.policy import Deadline
from repro.service.state import ServiceState
from repro.service.wire import canonical_json, parse_job_request

__all__ = ["JobServer", "serve_until_signalled"]

#: Submission bodies larger than this are rejected outright (413) —
#: backpressure must bind before a request is even buffered whole.
MAX_BODY_BYTES = 1 << 20

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _write_discovery(path: Path, info: dict) -> None:
    """Atomically publish the bound address (runs in an executor)."""
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(info, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _read_file_bytes(path: Path) -> "bytes | None":
    try:
        return path.read_bytes()
    except OSError:
        return None


def _execute_job(state: ServiceState, job, *, degraded: bool,
                 workers: int) -> dict:
    """One job, start to finish — runs in an executor thread.

    Checkpointed into the job's own ``c2bound.checkpoint/1`` journal
    (``resume=True`` always: a fresh job has no journal to restore, a
    resumed one replays to bit-identical results), with progress
    streamed as ``c2bound.trace/1`` events into the job directory.
    """
    job_dir = state.job_dir(job.job_id)
    job_dir.mkdir(parents=True, exist_ok=True)
    deadline = Deadline(job.deadline_s) if job.deadline_s else None
    trace = JsonlWriter(job_dir / "trace.jsonl", run_name="service.job",
                        job=job.job_id, tenant=job.tenant,
                        resumed=job.resumed)

    def on_progress(evaluated: int) -> None:
        trace.write({"type": "event", "name": "service.job.progress",
                     "ts": time.time(), "span": None,
                     "attrs": {"evaluated": evaluated}})

    t_wall, t0 = time.time(), time.perf_counter()
    status = "done"
    try:
        return run_job(job.spec, checkpoint_path=job_dir / "checkpoint.jsonl",
                       resume=True, workers=workers, deadline=deadline,
                       degraded=degraded, on_progress=on_progress)
    except BaseException as exc:
        status = ("timeout" if isinstance(exc, DeadlineExceededError)
                  else "failed")
        raise
    finally:
        dur = time.perf_counter() - t0
        trace.write({"type": "span", "name": "service.job.run", "id": 1,
                     "parent": None, "ts": t_wall, "dur_s": dur,
                     "attrs": {"job": job.job_id, "status": status,
                               "degraded": degraded}})
        trace.close()
        get_registry().histogram("service.job.seconds").observe(dur)


class JobServer:
    """The asyncio shell over one :class:`~repro.service.state.ServiceState`.

    Parameters
    ----------
    state:
        The orchestration core (owns queue, tenants, breaker, registry).
    host, port:
        Bind address; ``port=0`` picks a free port (published in
        ``server.json``).
    max_running:
        Global cap on concurrently executing jobs (executor threads).
    job_workers:
        Process-pool width *inside* each job (1 = inline evaluation).
    """

    def __init__(self, state: ServiceState, *, host: str = "127.0.0.1",
                 port: int = 0, max_running: int = 2,
                 job_workers: int = 1) -> None:
        if max_running < 1:
            raise InvalidParameterError(
                f"max_running must be >= 1, got {max_running}")
        self.state = state
        self.host = host
        self.port = port
        self.max_running = int(max_running)
        self.job_workers = int(job_workers)
        self.started_at = time.time()
        self._server: "asyncio.base_events.Server | None" = None
        self._wake: "asyncio.Event | None" = None
        self._stopping = False
        self._scheduler_task: "asyncio.Task | None" = None
        self._job_tasks: "set[asyncio.Task]" = set()
        self._ctr_requests = get_registry().counter("service.requests")

    # ---- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind, publish discovery, and start the scheduler."""
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        await loop.run_in_executor(
            None, _write_discovery, self.state.state_dir / "server.json",
            {"host": self.host, "port": self.port, "pid": os.getpid()})
        self._scheduler_task = asyncio.create_task(self._scheduler())

    async def stop(self) -> None:
        """Graceful stop: close the listener, let running jobs finish,
        flush caches and close the durable registry."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._wake is not None:
            self._wake.set()
        if self._scheduler_task is not None:
            await self._scheduler_task
        if self._job_tasks:
            await asyncio.gather(*self._job_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        from repro.sim.cache_store import flush_all_stores
        await loop.run_in_executor(None, flush_all_stores)
        await loop.run_in_executor(None, self.state.close)

    # ---- scheduling -------------------------------------------------------

    async def _scheduler(self) -> None:
        """Dispatch runnable jobs while slots are free; park otherwise."""
        assert self._wake is not None
        while not self._stopping:
            while (self.state.running_count() < self.max_running
                   and not self._stopping):
                job = self.state.next_job()
                if job is None:
                    break
                task = asyncio.create_task(self._run_job(job))
                self._job_tasks.add(task)
                task.add_done_callback(self._job_tasks.discard)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.25)
            except asyncio.TimeoutError:
                continue

    async def _run_job(self, job) -> None:
        """Execute one job with breaker-driven graceful degradation."""
        assert self._wake is not None
        loop = asyncio.get_running_loop()
        breaker = self.state.breaker
        sim_tier = job.spec.get("evaluator", {}).get("type") == "simulator"
        degraded = bool(sim_tier and not breaker.allow())
        try:
            try:
                result = await loop.run_in_executor(
                    None, partial(_execute_job, self.state, job,
                                  degraded=degraded,
                                  workers=self.job_workers))
            except DeadlineExceededError as exc:
                self.state.fail(job.job_id, status="timeout",
                                error=repr(exc))
                return
            except Exception as exc:
                # Broad on purpose: whatever a job raises, it must land
                # in a terminal state — a stuck "running" record would
                # pin its tenant's concurrency slot forever.
                if sim_tier and not degraded:
                    breaker.record_failure()
                    if not breaker.allow():
                        # Tier just tripped (or re-tripped): serve this
                        # job from the degradation ladder instead of
                        # surfacing the tier's failure to the client.
                        try:
                            result = await loop.run_in_executor(
                                None, partial(_execute_job, self.state, job,
                                              degraded=True,
                                              workers=self.job_workers))
                        except Exception as exc2:
                            self.state.fail(job.job_id, error=repr(exc2))
                            return
                        self.state.complete(job.job_id, result,
                                            degraded=True)
                        return
                self.state.fail(job.job_id, error=repr(exc))
                return
            if sim_tier and not degraded:
                breaker.record_success()
            self.state.complete(job.job_id, result, degraded=degraded)
        finally:
            self._wake.set()

    # ---- HTTP -------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._ctr_requests.inc()
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            status, payload, headers = await self._route(method, path, body)
        except _HttpError as exc:
            status, payload, headers = exc.status, {"error": exc.message}, {}
        except (ReproError, ValueError, asyncio.IncompleteReadError) as exc:
            status, payload, headers = 500, {"error": repr(exc)}, {}
        if isinstance(payload, bytes):
            body_bytes = payload
            content_type = headers.pop("Content-Type", "application/jsonl")
        else:
            body_bytes = (canonical_json(payload) + "\n").encode()
            content_type = "application/json"
        reason = _REASONS.get(status, "")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body_bytes)}\r\n"
                "Connection: close\r\n")
        for key, value in headers.items():
            head += f"{key}: {value}\r\n"
        writer.write(head.encode() + b"\r\n" + body_bytes)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "bad Content-Length") from exc
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, target, body

    async def _route(self, method: str, path: str, body: bytes):
        """Dispatch one request → ``(status, payload, extra headers)``."""
        if path == "/healthz" and method == "GET":
            health = self.state.health()
            health["uptime_s"] = round(time.time() - self.started_at, 3)
            health["max_running"] = self.max_running
            return 200, health, {}
        if path == "/readyz" and method == "GET":
            ready = self.state.ready()
            return (200 if ready else 503), {"ready": ready}, {}
        if path == "/v1/jobs" and method == "POST":
            return self._submit(body)
        if path == "/v1/jobs" and method == "GET":
            jobs = [self.state.jobs[k].public()
                    for k in sorted(self.state.jobs)]
            return 200, {"jobs": jobs}, {}
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/trace") and method == "GET":
                return await self._serve_trace(rest[:-len("/trace")])
            job = self.state.jobs.get(rest)
            if job is None:
                raise _HttpError(404, f"unknown job {rest!r}")
            if method == "GET":
                return 200, job.public(), {}
            if method == "DELETE":
                if self.state.cancel(rest):
                    return 200, self.state.jobs[rest].public(), {}
                raise _HttpError(409, f"job {rest!r} is not cancellable "
                                      f"(status {job.status!r})")
        raise _HttpError(404, f"no route for {method} {path}")

    def _submit(self, body: bytes):
        try:
            payload = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from exc
        try:
            request = parse_job_request(payload)
        except InvalidParameterError as exc:
            raise _HttpError(400, str(exc)) from exc
        try:
            job = self.state.submit(request)
        except AdmissionError as exc:
            return 429, {"error": str(exc), "reason": exc.reason}, \
                {"Retry-After": f"{exc.retry_after_s:g}"}
        assert self._wake is not None
        self._wake.set()
        return 202, job.public(), {}

    async def _serve_trace(self, job_id: str):
        job = self.state.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        loop = asyncio.get_running_loop()
        data = await loop.run_in_executor(
            None, _read_file_bytes,
            self.state.job_dir(job_id) / "trace.jsonl")
        if data is None:
            raise _HttpError(404, f"job {job_id!r} has no trace yet")
        return 200, data, {}


class _HttpError(ReproError):
    """Internal: carries an HTTP status through the handler."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def serve_until_signalled(server: JobServer) -> None:
    """Run the server until SIGTERM/SIGINT, then stop gracefully."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await server.start()
    await stop.wait()
    await server.stop()
