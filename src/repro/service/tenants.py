"""Per-tenant quotas and exactly-once budget settlement.

Three quotas bound what one tenant can do to the service:

- ``max_concurrency`` — jobs running at once (enforced by the
  scheduler through :meth:`TenantAccounts.can_run`);
- ``max_queued`` — jobs waiting in the admission queue;
- ``budget`` — total *fresh evaluations* (the Fig. 12
  ``dse.evaluations`` meter) the tenant may ever charge; ``None`` is
  unbounded.

Settlement is **exactly-once by job id**: :meth:`TenantAccounts.settle`
is idempotent, and a restarted server replays terminal registry records
through the same method — so a job that completed just before a crash
is charged once, not twice, and a job that was in flight (no terminal
record) is charged only when its resumed run completes.  The Hypothesis
property tests in ``tests/service`` drive arbitrary
submit/crash/restart interleavings against exactly this invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdmissionError, InvalidParameterError
from repro.obs import get_registry

__all__ = ["TenantQuota", "TenantAccounts"]


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant."""

    max_concurrency: int = 2
    max_queued: int = 16
    budget: "int | None" = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise InvalidParameterError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}")
        if self.max_queued < 1:
            raise InvalidParameterError(
                f"max_queued must be >= 1, got {self.max_queued}")
        if self.budget is not None and self.budget < 0:
            raise InvalidParameterError(
                f"budget must be >= 0 or None, got {self.budget}")


class TenantAccounts:
    """Live per-tenant counters against a quota table.

    Parameters
    ----------
    quotas:
        Tenant name → :class:`TenantQuota`; unknown tenants fall back
        to ``default``.
    default:
        Quota for tenants without an explicit entry.
    """

    def __init__(self, quotas: "dict[str, TenantQuota] | None" = None,
                 default: "TenantQuota | None" = None) -> None:
        self.quotas = dict(quotas) if quotas else {}
        self.default = default if default is not None else TenantQuota()
        self.queued: "dict[str, int]" = {}
        self.running: "dict[str, int]" = {}
        self.charged: "dict[str, int]" = {}
        self._settled: "set[str]" = set()
        self._ctr_charged = get_registry()

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing ``tenant``."""
        return self.quotas.get(tenant, self.default)

    def admit(self, tenant: str) -> None:
        """Check the per-tenant gates (queue slot, budget not exhausted).

        Raises :class:`~repro.errors.AdmissionError` with a
        machine-readable reason; passing means the caller may offer the
        job to the admission queue.
        """
        quota = self.quota_for(tenant)
        if self.queued.get(tenant, 0) >= quota.max_queued:
            raise AdmissionError(
                f"tenant {tenant!r} has {quota.max_queued} queued jobs",
                reason="tenant_quota", retry_after_s=2.0)
        if quota.budget is not None \
                and self.charged.get(tenant, 0) >= quota.budget:
            raise AdmissionError(
                f"tenant {tenant!r} exhausted its evaluation budget "
                f"({quota.budget})", reason="budget_exhausted",
                retry_after_s=60.0)

    def can_run(self, tenant: str) -> bool:
        """Whether the tenant has a free concurrency slot."""
        return self.running.get(tenant, 0) \
            < self.quota_for(tenant).max_concurrency

    # ---- lifecycle bookkeeping -------------------------------------------

    def on_queued(self, tenant: str) -> None:
        self.queued[tenant] = self.queued.get(tenant, 0) + 1

    def on_dequeued(self, tenant: str) -> None:
        self.queued[tenant] = max(0, self.queued.get(tenant, 0) - 1)

    def on_started(self, tenant: str) -> None:
        self.running[tenant] = self.running.get(tenant, 0) + 1

    def on_finished(self, tenant: str) -> None:
        self.running[tenant] = max(0, self.running.get(tenant, 0) - 1)

    def settle(self, tenant: str, job_id: str, evaluations: int) -> bool:
        """Charge one finished job's evaluations — exactly once.

        Returns ``True`` when the charge was applied, ``False`` when
        this ``job_id`` was already settled (replayed terminal records,
        double completion races).  The replay path and the live path
        both funnel through here, which is the whole exactly-once
        argument.
        """
        if job_id in self._settled:
            return False
        self._settled.add(job_id)
        if evaluations:
            self.charged[tenant] = (self.charged.get(tenant, 0)
                                    + int(evaluations))
            self._ctr_charged.counter("service.tenant.charged",
                                      tenant=tenant).inc(int(evaluations))
        return True

    def snapshot(self) -> dict:
        """Accounting state for ``/healthz`` (sorted for stability)."""
        tenants = sorted(set(self.queued) | set(self.running)
                         | set(self.charged))
        return {t: {"queued": self.queued.get(t, 0),
                    "running": self.running.get(t, 0),
                    "charged": self.charged.get(t, 0)}
                for t in tenants}
