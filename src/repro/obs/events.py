"""JSONL trace events: writer, reader, and schema validator.

Every line of a trace file is one JSON object.  Three event types exist
(the schema the CI smoke job validates, documented in
``docs/OBSERVABILITY.md``):

``span``
    A finished timed region: ``name`` (str), ``id`` (int), ``parent``
    (int or null), ``ts`` (epoch seconds at entry), ``dur_s`` (float),
    ``attrs`` (object).
``event``
    An instantaneous marker: ``name`` (str), ``ts`` (epoch seconds),
    ``span`` (enclosing span id or null), ``attrs`` (object).
``run``
    One header line per trace: ``schema`` (the version string),
    ``name`` (str), ``ts`` (epoch seconds), ``attrs`` (object).

Running ``python -m repro.obs.events TRACE.jsonl`` validates a file and
exits non-zero on the first malformed line — the CI smoke job's check.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

__all__ = ["SCHEMA_VERSION", "JsonlWriter", "read_jsonl",
           "validate_event", "validate_trace_file", "main"]

SCHEMA_VERSION = "c2bound.trace/1"

# type -> {field: allowed types}; None in the tuple permits JSON null.
_REQUIRED: dict[str, dict[str, tuple]] = {
    "span": {"name": (str,), "id": (int,), "parent": (int, type(None)),
             "ts": (int, float), "dur_s": (int, float), "attrs": (dict,)},
    "event": {"name": (str,), "ts": (int, float),
              "span": (int, type(None)), "attrs": (dict,)},
    "run": {"schema": (str,), "name": (str,), "ts": (int, float),
            "attrs": (dict,)},
}


class JsonlWriter:
    """Line-buffered JSON-lines sink (one ``run`` header, then events)."""

    def __init__(self, path: "str | Path", *, run_name: str = "trace",
                 **run_attrs) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", buffering=1)
        self.write({"type": "run", "schema": SCHEMA_VERSION,
                    "name": run_name, "ts": time.time(),
                    "attrs": dict(run_attrs)})

    def write(self, obj: dict) -> None:
        """Append one event object as a JSON line."""
        if self._fh is None:
            return
        self._fh.write(json.dumps(obj, default=str) + "\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_jsonl(path: "str | Path") -> list[dict]:
    """Parse every line of a JSONL file (blank lines skipped)."""
    out: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def validate_event(obj) -> list[str]:
    """Schema problems of one event object (empty list = valid)."""
    if not isinstance(obj, dict):
        return [f"event is {type(obj).__name__}, not an object"]
    etype = obj.get("type")
    if etype not in _REQUIRED:
        return [f"unknown event type {etype!r} "
                f"(expected one of {sorted(_REQUIRED)})"]
    problems = []
    for field, types in _REQUIRED[etype].items():
        if field not in obj:
            problems.append(f"{etype} event missing field {field!r}")
        elif not isinstance(obj[field], types) or (
                isinstance(obj[field], bool) and bool not in types):
            problems.append(
                f"{etype} field {field!r} has type "
                f"{type(obj[field]).__name__}")
    return problems


def validate_trace_file(path: "str | Path") -> list[str]:
    """Schema problems of a whole trace file (empty list = valid).

    Beyond per-event checks, requires a leading ``run`` header with the
    current schema version and referential integrity of span parents.
    """
    try:
        events = read_jsonl(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trace: {exc}"]
    if not events:
        return ["trace is empty (expected a run header line)"]
    problems: list[str] = []
    head = events[0]
    if head.get("type") != "run":
        problems.append("first line is not a 'run' header")
    elif head.get("schema") != SCHEMA_VERSION:
        problems.append(f"schema {head.get('schema')!r} != {SCHEMA_VERSION!r}")
    for i, obj in enumerate(events):
        problems.extend(f"line {i + 1}: {p}" for p in validate_event(obj))
    span_ids = {obj["id"] for obj in events
                if obj.get("type") == "span" and isinstance(obj.get("id"), int)}
    for i, obj in enumerate(events):
        if obj.get("type") == "span":
            parent = obj.get("parent")
            if parent is not None and parent not in span_ids:
                problems.append(f"line {i + 1}: span parent {parent} "
                                "references no span in this trace")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro.obs.events TRACE.jsonl`` — validate a trace."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.events TRACE.jsonl",
              file=sys.stderr)
        return 2
    problems = validate_trace_file(argv[0])
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        return 1
    print(f"OK: {argv[0]} ({len(read_jsonl(argv[0]))} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
