"""Observability: metrics registry, tracing spans, run manifests.

The accounting backbone of the reproduction (see
``docs/OBSERVABILITY.md`` for the metric-name catalog and the JSONL
event schema):

- :mod:`repro.obs.registry` — process-wide counters / gauges /
  histograms (the Fig. 12 simulation meter lives here as
  ``dse.evaluations``);
- :mod:`repro.obs.span` — nestable tracing spans, no-ops when disabled;
- :mod:`repro.obs.events` — the JSONL trace schema, writer and
  validator (``python -m repro.obs.events trace.jsonl``);
- :mod:`repro.obs.manifest` — per-run provenance records (config, seed,
  git SHA, wall time, final metrics);
- :mod:`repro.obs.export` — metrics snapshots, timing summaries and the
  CLI's structured reporter;
- :mod:`repro.obs.stream` — bounded-memory trace tailing and pub/sub
  aggregation (the live-progress primitive);
- :mod:`repro.obs.profile` — wall-clock attribution into
  ``c2bound.profile/1`` buckets;
- :mod:`repro.obs.report` — ``c2bound report`` / ``diff`` / ``tail``.
"""

from repro.obs.events import (
    SCHEMA_VERSION,
    JsonlWriter,
    read_jsonl,
    validate_event,
    validate_trace_file,
)
from repro.obs.export import Reporter, timing_table, write_metrics
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    VOLATILE_KEYS,
    RunManifest,
    git_sha,
    package_version,
    stable_view,
)
from repro.obs.profile import (
    PROFILE_BUCKETS,
    PROFILE_SCHEMA,
    build_profile,
    profile_trace,
    write_profile,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.span import (
    Span,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    span,
    trace_event,
)
from repro.obs.stream import (
    EventBus,
    MetricFold,
    ProgressAggregator,
    SpanRollup,
    TraceReader,
)

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    # span
    "Span",
    "Tracer",
    "get_tracer",
    "configure_tracing",
    "disable_tracing",
    "span",
    "trace_event",
    # events
    "SCHEMA_VERSION",
    "JsonlWriter",
    "read_jsonl",
    "validate_event",
    "validate_trace_file",
    # manifest
    "MANIFEST_SCHEMA",
    "VOLATILE_KEYS",
    "RunManifest",
    "git_sha",
    "package_version",
    "stable_view",
    # export
    "Reporter",
    "write_metrics",
    "timing_table",
    # stream
    "TraceReader",
    "EventBus",
    "SpanRollup",
    "MetricFold",
    "ProgressAggregator",
    # profile
    "PROFILE_SCHEMA",
    "PROFILE_BUCKETS",
    "build_profile",
    "profile_trace",
    "write_profile",
]
