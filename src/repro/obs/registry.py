"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the single accounting surface of the reproduction: the
simulator publishes per-layer hit/miss/stall counts into it, the DSE
methods publish their simulation budgets (the Fig. 12 meter), and the
solvers publish iteration counts.  Metrics are plain Python numbers
behind tiny ``__slots__`` objects, so incrementing a counter costs one
attribute add — cheap enough to leave enabled unconditionally.

Metric identity is ``name`` plus an optional set of labels
(``counter("dse.evaluations", method="aps")``); the flattened key used
in snapshots is ``name{k=v,...}`` with labels sorted by key.  Creating
the same name with a different metric type raises
:class:`~repro.errors.ObservabilityError`.

``MetricsRegistry.reset`` zeroes metrics *in place* (identity is
preserved), so callers may cache the metric objects across resets.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterator, Mapping, Type, TypeVar, Union

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
           "get_registry", "set_registry"]


def _flat_key(name: str, labels: "Mapping[str, object]") -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, simulations, iterations)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: "Mapping[str, object]") -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: "int | float" = 0

    def inc(self, amount: "int | float" = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0

    def _snapshot(self) -> "int | float":
        return self.value


class Gauge:
    """Last-written value (sizes, errors, correlations)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: "Mapping[str, object]") -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: "int | float" = 0.0

    def set(self, value: "int | float") -> None:
        """Record the current value."""
        self.value = value

    def _reset(self) -> None:
        self.value = 0.0

    def _snapshot(self) -> "int | float":
        return self.value


class Histogram:
    """Streaming distribution summary (residuals, latencies).

    Keeps exact ``count``/``total``/``min``/``max`` plus a bounded
    sample of the first ``max_samples`` observations for quantiles;
    beyond the bound only the exact aggregates keep updating.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "max_samples", "_samples")

    def __init__(self, name: str, labels: "Mapping[str, object]", *,
                 max_samples: int = 512) -> None:
        self.name = name
        self.labels = dict(labels)
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []

    def observe(self, value: "int | float") -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 before any)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile from the retained sample."""
        if not 0.0 <= q <= 100.0:
            raise ObservabilityError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = round(q / 100.0 * (len(ordered) - 1))
        return ordered[int(idx)]

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples.clear()

    def _snapshot(self) -> "dict[str, float | int | None]":
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": 0.0}
        return {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}


#: Any registry-managed metric object.
Metric = Union[Counter, Gauge, Histogram]

_M = TypeVar("_M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Thread-safe for metric *creation*; updates on the metric objects
    themselves are plain attribute writes (the GIL makes them atomic
    enough for accounting purposes).
    """

    def __init__(self) -> None:
        self._metrics: "dict[str, Metric]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: "Type[_M]", name: str,
                       labels: "Mapping[str, object]") -> "_M":
        key = _flat_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get_or_create(Histogram, name, labels)

    def get(self, name: str,
            **labels: object) -> "int | float | dict[str, float | int | None] | None":
        """The metric's snapshot value, or ``None`` if never created."""
        metric = self._metrics.get(_flat_key(name, labels))
        return None if metric is None else metric._snapshot()

    def __iter__(self) -> "Iterator[tuple[str, Metric]]":
        return iter(sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready view: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with flattened label keys, sorted."""
        out: dict[str, dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        section = {Counter: "counters", Gauge: "gauges",
                   Histogram: "histograms"}
        for key, metric in self:
            out[section[type(metric)]][key] = metric._snapshot()
        return out

    def write_json(self, path: "str | Path") -> Path:
        """Write :meth:`snapshot` as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    def reset(self) -> None:
        """Zero every metric in place (object identity is preserved)."""
        for metric in self._metrics.values():
            metric._reset()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _registry
    if not isinstance(registry, MetricsRegistry):
        raise ObservabilityError(
            f"expected a MetricsRegistry, got {type(registry).__name__}")
    previous = _registry
    _registry = registry
    return previous
