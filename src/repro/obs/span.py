"""Nestable tracing spans with near-zero disabled cost.

A span times one region of work (``with tracer.span("dse.aps.simulate",
candidates=96):``).  Spans nest: the tracer keeps a stack, each span
records its parent's id, and the pair round-trips through the JSONL
event stream (:mod:`repro.obs.events`) for offline analysis.

Tracing is **disabled by default**: ``Tracer.span`` then returns a
shared no-op context manager, so an instrumented call site costs one
method call and one attribute check — the price the `<5%` overhead
guard in ``tests/obs/test_overhead.py`` enforces.  When enabled, every
finished span is aggregated (count + total seconds per name) for the
CLI's end-of-run timing summary, and mirrored to the JSONL sink when
one is attached.
"""

from __future__ import annotations

import time
from pathlib import Path

__all__ = ["Span", "Tracer", "get_tracer", "configure_tracing",
           "disable_tracing", "span", "trace_event"]


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, **attrs: object) -> None:
        """No-op attribute write."""


_NULL_SPAN = _NullSpan()


class Span:
    """One live timed region (use as a context manager)."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "t_wall", "_t0", "duration_s")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: "dict[str, object]") -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: "int | None" = None
        self.t_wall = 0.0
        self._t0 = 0.0
        self.duration_s = 0.0

    def set_attr(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.span_id, self.parent_id = self.tracer._push()
        self.t_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        return False


class Tracer:
    """Span factory + aggregator + optional JSONL sink.

    Parameters
    ----------
    enabled:
        When ``False`` (the default for the module-level tracer),
        :meth:`span` returns a shared no-op and :meth:`event` does
        nothing.
    sink:
        Object with ``write(dict)`` (e.g.
        :class:`repro.obs.events.JsonlWriter`); optional — an enabled
        tracer without a sink still aggregates timings in memory.
    """

    def __init__(self, *, enabled: bool = False, sink=None) -> None:
        self.enabled = enabled
        self.sink = sink
        self._stack: list[int] = []
        self._next_id = 0
        # name -> [span count, total seconds]
        self.aggregates: dict[str, list] = {}

    # ----- span lifecycle -------------------------------------------------
    def span(self, name: str, **attrs: object):
        """A new child span of the innermost live span (or a root)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def _push(self) -> tuple[int, "int | None"]:
        parent = self._stack[-1] if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(span_id)
        return span_id, parent

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generator-held spans): drop the
        # deepest matching entry instead of asserting.
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:
            self._stack.remove(span.span_id)
        agg = self.aggregates.setdefault(span.name, [0, 0.0])
        agg[0] += 1
        agg[1] += span.duration_s
        if self.sink is not None:
            self.sink.write({
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "ts": span.t_wall,
                "dur_s": span.duration_s,
                "attrs": span.attrs,
            })

    # ----- externally timed spans -----------------------------------------
    def record_span(self, name: str, dur_s: float,
                    **attrs: object) -> None:
        """Record a span whose duration was measured elsewhere.

        For regions the tracer cannot wrap in a context manager — e.g.
        a pool worker's execution time (measured worker-side, where the
        tracer is disabled) or a queue-wait interval derived from two
        clock reads.  The span is parented to the innermost live span,
        aggregated, and mirrored to the sink exactly like a context
        managed one; its ``ts`` is back-dated by ``dur_s`` so timeline
        renderings place it where the work happened.  No-op while
        disabled, same as :meth:`span`.
        """
        if not self.enabled:
            return
        span_id = self._next_id
        self._next_id += 1
        agg = self.aggregates.setdefault(name, [0, 0.0])
        agg[0] += 1
        agg[1] += dur_s
        if self.sink is not None:
            self.sink.write({
                "type": "span",
                "name": name,
                "id": span_id,
                "parent": self._stack[-1] if self._stack else None,
                "ts": time.time() - dur_s,
                "dur_s": dur_s,
                "attrs": attrs,
            })

    # ----- point events ---------------------------------------------------
    def event(self, name: str, **attrs: object) -> None:
        """Emit an instantaneous event inside the current span."""
        if not self.enabled or self.sink is None:
            return
        self.sink.write({
            "type": "event",
            "name": name,
            "ts": time.time(),
            "span": self._stack[-1] if self._stack else None,
            "attrs": attrs,
        })

    # ----- reporting ------------------------------------------------------
    def timing_table(self):
        """Aggregated per-span-name timings as a
        :class:`repro.io.results.ResultTable` (``None`` if no spans
        finished)."""
        if not self.aggregates:
            return None
        from repro.io.results import ResultTable
        table = ResultTable(["span", "count", "total_s", "mean_ms"],
                            title="Timing summary")
        for name, (count, total) in sorted(
                self.aggregates.items(), key=lambda kv: -kv[1][1]):
            table.add_row(name, count, total, 1e3 * total / count)
        return table

    def close(self) -> None:
        """Flush and close the sink (if any)."""
        if self.sink is not None:
            self.sink.close()
            self.sink = None


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless configured)."""
    return _tracer


def configure_tracing(path: "str | Path | None" = None, *,
                      enabled: bool = True) -> Tracer:
    """Replace the process-wide tracer.

    ``path`` attaches a JSONL sink; without it the tracer only
    aggregates in-memory timings (enough for the timing summary).
    The previous tracer's sink is closed.
    """
    from repro.obs.events import JsonlWriter
    global _tracer
    _tracer.close()
    sink = JsonlWriter(path) if path is not None else None
    _tracer = Tracer(enabled=enabled, sink=sink)
    return _tracer


def disable_tracing() -> None:
    """Restore the default disabled tracer (closes any sink)."""
    configure_tracing(None, enabled=False)


def span(name: str, **attrs: object):
    """Convenience: a span on the process-wide tracer."""
    return _tracer.span(name, **attrs)


def trace_event(name: str, **attrs: object) -> None:
    """Convenience: a point event on the process-wide tracer."""
    _tracer.event(name, **attrs)
