"""Run analysis: ``c2bound report`` / ``diff`` / ``tail``.

Consumes the artifacts one observable run leaves in a directory — the
``c2bound.manifest/1`` provenance record, the ``c2bound.trace/1`` span
trace, the metrics-registry snapshot, and the result CSVs — and turns
them into answers:

- :func:`build_report` + :func:`render_html` — a ``c2bound.report/1``
  JSON document and a self-contained, dependency-free HTML page: phase
  (profile-bucket) breakdown, cache hit-rate curve, retry/fault
  timeline, per-method evaluation counts.
- :func:`diff_runs` — manifest/config identity, output CSV byte
  comparison, deterministic-metric deltas and profile-bucket deltas
  between two runs.  A run and its ``--resume``\\ d twin diff as
  **bit-identical**: results and deterministic counters match while
  volatile telemetry (timings, cache/retry counters) is reported as
  deltas, not identity failures.
- :func:`tail_command` — live-follow an in-flight sweep's trace via
  the streaming layer (:mod:`repro.obs.stream`).

``cli_main`` is the dispatch target ``c2bound`` forwards the
``report`` / ``diff`` / ``tail`` subcommands to.
"""

from __future__ import annotations

import argparse
import html as _html
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.manifest import MANIFEST_SCHEMA, stable_view
from repro.obs.profile import (
    PROFILE_BUCKETS,
    build_profile,
    format_profile,
    render_flame,
)
from repro.obs.registry import get_registry
from repro.obs.stream import (
    EventBus,
    ProgressAggregator,
    SpanRollup,
    TraceReader,
    follow,
)

__all__ = ["REPORT_SCHEMA", "RunArtifacts", "discover_run",
           "build_report", "render_html", "write_report", "diff_runs",
           "report_command", "diff_command", "tail_command", "cli_main"]

REPORT_SCHEMA = "c2bound.report/1"

#: Metric-name prefixes that legitimately differ between bit-identical
#: runs (timing, caching, interruption/resume and telemetry-consumer
#: accounting).  ``diff_runs`` reports them as deltas instead of
#: identity failures.
VOLATILE_METRIC_PREFIXES = ("resilience.", "sim.cache.", "obs.stream.",
                            "profile.", "report.", "service.")

#: Manifest ``config`` keys that describe the *invocation*, not the
#: computation: output/trace/checkpoint locations and the resume flag.
#: A resumed twin legitimately differs in all of them.
VOLATILE_CONFIG_KEYS = ("out", "trace", "checkpoint", "resume",
                        "sim_cache")

_TIMELINE_CAP = 200
_CURVE_CAP = 200


# ---------------------------------------------------------------------------
# run-directory discovery
# ---------------------------------------------------------------------------

@dataclass
class RunArtifacts:
    """What :func:`discover_run` found in one run directory."""

    root: Path
    manifest_path: "Path | None" = None
    manifest: "dict | None" = None
    trace_path: "Path | None" = None
    metrics_path: "Path | None" = None
    metrics: "dict | None" = None
    csvs: "list[Path]" = field(default_factory=list)

    @property
    def experiment(self) -> "str | None":
        """Experiment name from the manifest, when one was found."""
        if self.manifest is None:
            return None
        name = self.manifest.get("experiment")
        return name if isinstance(name, str) else None


def _load_json(path: Path) -> "dict | None":
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return obj if isinstance(obj, dict) else None


def _sniff_trace(path: Path) -> bool:
    """True when the file's first line is a ``c2bound.trace/1`` header."""
    try:
        with path.open("r", encoding="utf-8") as fh:
            first = fh.readline()
    except OSError:
        return False
    try:
        obj = json.loads(first)
    except ValueError:
        return False
    return (isinstance(obj, dict) and obj.get("type") == "run"
            and "trace" in str(obj.get("schema", "")))


def discover_run(run_dir: "str | Path") -> RunArtifacts:
    """Identify a run's artifacts by content, not filename.

    JSON files are sniffed for the manifest schema tag or the
    counters/gauges/histograms shape of a registry snapshot; JSONL
    files for the trace header (checkpoint journals carry a different
    schema tag and are skipped); every CSV is collected.
    """
    root = Path(run_dir)
    found = RunArtifacts(root=root)
    if not root.is_dir():
        return found
    for path in sorted(root.iterdir()):
        if path.suffix == ".csv":
            found.csvs.append(path)
        elif path.suffix == ".jsonl":
            if found.trace_path is None and _sniff_trace(path):
                found.trace_path = path
        elif path.suffix == ".json":
            obj = _load_json(path)
            if obj is None:
                continue
            if obj.get("schema") == MANIFEST_SCHEMA:
                if found.manifest_path is None:
                    found.manifest_path, found.manifest = path, obj
            elif ({"counters", "gauges", "histograms"} <= obj.keys()
                    and found.metrics_path is None):
                found.metrics_path, found.metrics = path, obj
    if found.metrics is None and found.manifest is not None:
        metrics = found.manifest.get("metrics")
        if isinstance(metrics, dict) and metrics:
            found.metrics = metrics
    return found


# ---------------------------------------------------------------------------
# report construction
# ---------------------------------------------------------------------------

def _fold_trace(trace_path: Path) -> "tuple[SpanRollup, ProgressAggregator, list[dict]]":
    """One pass over the trace: rollup + progress + resilience events."""
    rollup = SpanRollup()
    progress = ProgressAggregator()
    timeline: "list[dict]" = []
    bus = EventBus()
    bus.subscribe(rollup)
    bus.subscribe(progress)
    bus.subscribe(timeline.append, prefixes=("resilience.",))
    reader = TraceReader(trace_path)
    while bus.pump(reader):
        pass
    return rollup, progress, timeline


def _hit_rate_curve(trace_path: Path) -> "list[dict]":
    """Cumulative evaluation-cache hit rate (the ``cached`` share of
    ``dse.batch`` spans' points) in trace order, downsampled to ≤
    ``_CURVE_CAP`` points."""
    batches: "list[tuple[float, int, int]]" = []
    for event in TraceReader(trace_path).read_all():
        if event.get("type") != "span" or event.get("name") != "dse.batch":
            continue
        attrs = event.get("attrs") or {}
        fresh = attrs.get("fresh", attrs.get("size", 0))
        cached = attrs.get("cached", 0)
        ts = event.get("ts", 0.0)
        if isinstance(fresh, (int, float)) and isinstance(
                cached, (int, float)) and isinstance(ts, (int, float)):
            batches.append((float(ts), int(fresh), int(cached)))
    batches.sort(key=lambda row: row[0])
    points: "list[dict]" = []
    evals = 0
    hits = 0
    for _ts, fresh, cached in batches:
        evals += fresh + cached
        hits += cached
        if evals > 0:
            points.append({"evaluations": evals, "hit_rate": hits / evals})
    if len(points) > _CURVE_CAP:
        step = len(points) / _CURVE_CAP
        sampled = [points[int(i * step)] for i in range(_CURVE_CAP)]
        if sampled[-1] is not points[-1]:
            sampled[-1] = points[-1]
        points = sampled
    return points


def _method_counts(metrics: "dict | None") -> "dict[str, int]":
    """Per-method evaluation counts from ``dse.evaluations{method=x}``."""
    out: "dict[str, int]" = {}
    counters = (metrics or {}).get("counters", {})
    for key, value in counters.items():
        if not key.startswith("dse.evaluations{"):
            continue
        labels = key[key.index("{") + 1:key.rindex("}")]
        for pair in labels.split(","):
            k, _, v = pair.partition("=")
            if k == "method" and isinstance(value, (int, float)):
                out[v] = int(value)
    return dict(sorted(out.items()))


def build_report(run_dir: "str | Path") -> dict:
    """Fold one run directory into a ``c2bound.report/1`` document."""
    run = discover_run(run_dir)
    profile: "dict | None" = None
    progress_snapshot: "dict | None" = None
    timeline: "list[dict]" = []
    timeline_dropped = 0
    curve: "list[dict]" = []
    if run.trace_path is not None:
        rollup, progress, raw_timeline = _fold_trace(run.trace_path)
        profile = build_profile(rollup, trace=str(run.trace_path))
        progress_snapshot = progress.snapshot()
        base = progress.started_ts or 0.0
        if len(raw_timeline) > _TIMELINE_CAP:
            timeline_dropped = len(raw_timeline) - _TIMELINE_CAP
            raw_timeline = raw_timeline[:_TIMELINE_CAP]
        timeline = [{
            "name": ev.get("name"),
            "type": ev.get("type"),
            "t_rel_s": (float(ev["ts"]) - base
                        if isinstance(ev.get("ts"), (int, float)) else None),
            "dur_s": ev.get("dur_s"),
            "attrs": ev.get("attrs") or {},
        } for ev in raw_timeline]
        curve = _hit_rate_curve(run.trace_path)
    manifest = run.manifest or {}
    counters = (run.metrics or {}).get("counters", {})
    report = {
        "schema": REPORT_SCHEMA,
        "run_dir": str(run.root),
        "experiment": run.experiment,
        "run_id": manifest.get("run_id"),
        "wall_time_s": manifest.get("wall_time_s"),
        "package_version": manifest.get("package_version"),
        "git_sha": manifest.get("git_sha"),
        "argv": manifest.get("argv"),
        "artifacts": {
            "manifest": _rel(run.manifest_path, run.root),
            "trace": _rel(run.trace_path, run.root),
            "metrics": _rel(run.metrics_path, run.root),
            "csvs": [_rel(p, run.root) for p in run.csvs],
        },
        "evaluations": {
            "fresh": counters.get("dse.evaluations"),
            "cached": counters.get("dse.evaluations_cached"),
            "by_method": _method_counts(run.metrics),
        },
        "profile": profile,
        "progress": progress_snapshot,
        "cache_curve": curve,
        "timeline": timeline,
        "timeline_dropped": timeline_dropped,
    }
    get_registry().counter("report.reports").inc()
    return report


def _rel(path: "Path | None", root: Path) -> "str | None":
    if path is None:
        return None
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def write_report(report: dict, path: "str | Path") -> Path:
    """Write the report document as indented JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out


# ---------------------------------------------------------------------------
# HTML rendering (self-contained, dependency-free)
# ---------------------------------------------------------------------------

# Palette per the repo's chart conventions: single-hue bars for
# magnitude, fixed categorical slot order for the bucket strip, ink
# tokens for all text, dark mode selected (not auto-inverted).
_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --muted: #898781; --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
  --series-7: #9085e9;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px; line-height: 1.45;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 24px 0 8px;
               color: var(--text-secondary); }
.viz-root .sub { color: var(--text-secondary); font-size: 13px;
                 margin-bottom: 16px; }
.viz-root .card { background: var(--surface-1); border: 1px solid
                  var(--border); border-radius: 8px; padding: 16px;
                  margin-bottom: 16px; }
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile { background: var(--surface-1); border: 1px solid
                  var(--border); border-radius: 8px; padding: 12px 16px;
                  min-width: 130px; }
.viz-root .tile .v { font-size: 22px; font-weight: 600; }
.viz-root .tile .k { font-size: 12px; color: var(--text-secondary); }
.viz-root table { border-collapse: collapse; font-size: 13px; }
.viz-root th { text-align: left; color: var(--text-secondary);
               font-weight: 500; padding: 3px 14px 3px 0;
               border-bottom: 1px solid var(--axis); }
.viz-root td { padding: 3px 14px 3px 0; border-bottom: 1px solid
               var(--grid); font-variant-numeric: tabular-nums; }
.viz-root .bar-row { display: flex; align-items: center; gap: 8px;
                     margin: 4px 0; font-size: 13px; }
.viz-root .bar-row .lbl { width: 110px; color: var(--text-secondary); }
.viz-root .bar-row .track { flex: 1; background: none; height: 14px; }
.viz-root .bar-row .fill { background: var(--series-1); height: 14px;
                           border-radius: 0 4px 4px 0; min-width: 1px; }
.viz-root .bar-row .val { width: 150px; font-variant-numeric:
                          tabular-nums; }
.viz-root .strip { display: flex; height: 18px; margin: 10px 0 6px; }
.viz-root .strip span { height: 18px; margin-right: 2px; }
.viz-root .strip span:last-child { margin-right: 0; }
.viz-root .legend { display: flex; flex-wrap: wrap; gap: 14px;
                    font-size: 12px; color: var(--text-secondary); }
.viz-root .legend .sw { display: inline-block; width: 10px;
                        height: 10px; border-radius: 2px;
                        margin-right: 5px; }
.viz-root .empty { color: var(--muted); font-size: 13px; }
.viz-root svg text { fill: var(--muted); font-size: 11px;
                     font-family: inherit; }
.viz-root svg .gridline { stroke: var(--grid); stroke-width: 1; }
.viz-root svg .axisline { stroke: var(--axis); stroke-width: 1; }
.viz-root svg .curve { stroke: var(--series-1); stroke-width: 2;
                       fill: none; }
.viz-root svg .dot { fill: var(--series-1); }
"""

_BUCKET_SLOTS = {"simulation": "--series-1", "cache_io": "--series-2",
                 "ipc": "--series-3", "queue_wait": "--series-4",
                 "retry_backoff": "--series-5", "search": "--series-6",
                 "framework": "--series-7"}


def _esc(value: object) -> str:
    return _html.escape(str(value))


def _fmt_s(value: object) -> str:
    return f"{value:.3f}s" if isinstance(value, (int, float)) else "—"


def _tile(label: str, value: str) -> str:
    return (f'<div class="tile"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(label)}</div></div>')


def _bucket_section(profile: "dict | None") -> str:
    if not profile:
        return '<p class="empty">No trace found — run with --trace.</p>'
    rows: "list[str]" = []
    strip: "list[str]" = []
    legend: "list[str]" = []
    top = max((s["seconds"] for s in profile["buckets"].values()),
              default=0.0)
    for bucket in PROFILE_BUCKETS:
        slot = profile["buckets"].get(bucket)
        if slot is None or slot["seconds"] <= 0:
            continue
        width = 100.0 * slot["seconds"] / top if top > 0 else 0.0
        rows.append(
            f'<div class="bar-row"><span class="lbl">{_esc(bucket)}</span>'
            f'<span class="track"><span class="fill" style="width:'
            f'{width:.2f}%;display:block"></span></span>'
            f'<span class="val">{slot["seconds"]:.3f}s '
            f'({100.0 * slot["share"]:.1f}%)</span></div>')
        color = _BUCKET_SLOTS.get(bucket, "--series-6")
        strip.append(f'<span style="flex:{max(slot["share"], 0.004):.4f};'
                     f'background:var({color})" title="{_esc(bucket)} '
                     f'{100.0 * slot["share"]:.1f}%"></span>')
        legend.append(f'<span><span class="sw" style="background:'
                      f'var({color})"></span>{_esc(bucket)}</span>')
    coverage = (f'window {profile["window_s"]:.3f}s · attributed '
                f'{profile["attributed_s"]:.3f}s · coverage '
                f'{100.0 * profile["coverage"]:.1f}%')
    return (f'<p class="sub">{_esc(coverage)}</p>'
            + "".join(rows)
            + f'<div class="strip">{"".join(strip)}</div>'
            + f'<div class="legend">{"".join(legend)}</div>')


def _curve_section(curve: "list[dict]") -> str:
    if not curve:
        return '<p class="empty">No batched evaluations in the trace.</p>'
    w, h, pad = 640, 220, 42
    x_max = max(p["evaluations"] for p in curve)
    parts: "list[str]" = [f'<svg viewBox="0 0 {w} {h}" width="{w}" '
                          f'height="{h}" role="img" aria-label='
                          '"Cumulative evaluation-cache hit rate">']
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = h - pad - frac * (h - 2 * pad)
        cls = "axisline" if frac == 0.0 else "gridline"
        parts.append(f'<line class="{cls}" x1="{pad}" y1="{y:.1f}" '
                     f'x2="{w - 12}" y2="{y:.1f}"/>')
        parts.append(f'<text x="{pad - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{int(frac * 100)}%</text>')
    pts: "list[str]" = []
    for p in curve:
        x = pad + (p["evaluations"] / x_max) * (w - pad - 12)
        y = h - pad - p["hit_rate"] * (h - 2 * pad)
        pts.append(f"{x:.1f},{y:.1f}")
    parts.append(f'<polyline class="curve" points="{" ".join(pts)}"/>')
    step = max(1, len(curve) // 16)
    for i in range(0, len(curve), step):
        p = curve[i]
        x = pad + (p["evaluations"] / x_max) * (w - pad - 12)
        y = h - pad - p["hit_rate"] * (h - 2 * pad)
        parts.append(f'<circle class="dot" cx="{x:.1f}" cy="{y:.1f}" '
                     f'r="4"><title>{p["evaluations"]:,} evaluations · '
                     f'{100.0 * p["hit_rate"]:.1f}% cached</title>'
                     '</circle>')
    parts.append(f'<text x="{(w + pad) / 2}" y="{h - 8}" '
                 'text-anchor="middle">cumulative evaluations</text>')
    parts.append("</svg>")
    final = curve[-1]
    return ("".join(parts)
            + f'<p class="sub">final: {100.0 * final["hit_rate"]:.1f}% of '
              f'{final["evaluations"]:,} evaluations served from cache</p>')


def _timeline_section(timeline: "list[dict]", dropped: int) -> str:
    if not timeline:
        return ('<p class="empty">No retries, backoffs or faults '
                'recorded.</p>')
    rows = ["<table><tr><th>t (s)</th><th>event</th><th>detail</th></tr>"]
    for ev in timeline:
        t = (f"{ev['t_rel_s']:.3f}"
             if isinstance(ev.get("t_rel_s"), (int, float)) else "—")
        detail = ", ".join(f"{k}={v}" for k, v in ev["attrs"].items())
        if isinstance(ev.get("dur_s"), (int, float)):
            detail = f"dur={ev['dur_s']:.3f}s" + (
                f", {detail}" if detail else "")
        rows.append(f"<tr><td>{_esc(t)}</td><td>{_esc(ev['name'])}</td>"
                    f"<td>{_esc(detail)}</td></tr>")
    rows.append("</table>")
    if dropped:
        rows.append(f'<p class="sub">… {dropped} further event(s) '
                    'truncated from this table (all are in the JSON '
                    'report).</p>')
    return "".join(rows)


def _methods_section(by_method: "dict[str, int]") -> str:
    if not by_method:
        return '<p class="empty">No per-method counters in this run.</p>'
    rows = ["<table><tr><th>method</th><th>fresh evaluations</th></tr>"]
    for method, count in by_method.items():
        rows.append(f"<tr><td>{_esc(method)}</td>"
                    f"<td>{count:,}</td></tr>")
    rows.append("</table>")
    return "".join(rows)


def render_html(report: dict) -> str:
    """The report as one self-contained HTML page (no external assets)."""
    profile = report.get("profile")
    coverage = (f"{100.0 * profile['coverage']:.1f}%"
                if profile else "—")
    fresh = report["evaluations"].get("fresh")
    cached = report["evaluations"].get("cached")
    tiles = [
        _tile("wall time", _fmt_s(report.get("wall_time_s"))),
        _tile("fresh evaluations",
              f"{fresh:,}" if isinstance(fresh, int) else "—"),
        _tile("cached evaluations",
              f"{cached:,}" if isinstance(cached, int) else "—"),
        _tile("profile coverage", coverage),
    ]
    sub = " · ".join(_esc(part) for part in (
        f"run {report.get('run_id') or '?'}",
        f"v{report.get('package_version') or '?'}",
        f"git {(report.get('git_sha') or '?')[:12]}",
        f"dir {report.get('run_dir')}") if part)
    head = (f"<h1>c2bound run report — "
            f"{_esc(report.get('experiment') or 'unknown')}</h1>"
            f'<p class="sub">{sub}</p>')
    body = [
        head,
        f'<div class="tiles">{"".join(tiles)}</div>',
        "<h2>Wall-clock attribution</h2>",
        f'<div class="card">{_bucket_section(profile)}</div>',
        "<h2>Evaluation-cache hit rate</h2>",
        f'<div class="card">{_curve_section(report["cache_curve"])}</div>',
        "<h2>Retry / fault timeline</h2>",
        f'<div class="card">'
        f'{_timeline_section(report["timeline"], report["timeline_dropped"])}'
        "</div>",
        "<h2>Evaluations by search method</h2>",
        f'<div class="card">'
        f'{_methods_section(report["evaluations"]["by_method"])}</div>',
    ]
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            "<meta name=\"viewport\" content=\"width=device-width, "
            "initial-scale=1\">"
            f"<title>c2bound report — "
            f"{_esc(report.get('experiment') or 'run')}</title>"
            f"<style>{_CSS}</style></head>"
            f"<body class=\"viz-root\">{''.join(body)}</body></html>\n")


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------

def _is_volatile_metric(name: str) -> bool:
    return name.startswith(VOLATILE_METRIC_PREFIXES)


def _identity_view(manifest: dict) -> dict:
    """The manifest fields that define run *identity*.

    Starts from :func:`repro.obs.manifest.stable_view` and further
    drops ``metrics`` (compared separately with the volatile-prefix
    allowlist), ``argv`` and the invocation-only config keys — a run
    and its resumed twin were launched with different flags but
    computed the same thing.
    """
    view = {k: v for k, v in stable_view(manifest).items()
            if k not in ("metrics", "argv")}
    config = view.get("config")
    if isinstance(config, dict):
        view["config"] = {k: v for k, v in config.items()
                          if k not in VOLATILE_CONFIG_KEYS}
    return view


def _scalar_diff(section_a: dict, section_b: dict,
                 *, volatile_ok: bool) -> "tuple[dict, list[str]]":
    """Deltas + identity failures between two scalar-metric sections."""
    deltas: dict = {}
    mismatches: "list[str]" = []
    for key in sorted(set(section_a) | set(section_b)):
        a, b = section_a.get(key), section_b.get(key)
        if a == b:
            continue
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            deltas[key] = {"a": a, "b": b, "delta": b - a}
        else:
            deltas[key] = {"a": a, "b": b}
        if not (volatile_ok and _is_volatile_metric(key)):
            mismatches.append(key)
    return deltas, mismatches


def _compare_metrics(metrics_a: "dict | None",
                     metrics_b: "dict | None") -> dict:
    """Metric comparison honouring the volatile-prefix allowlist.

    Counters/gauges outside the volatile prefixes must match exactly.
    Histograms are deterministic in their ``count`` only (sums are
    wall-clock); counts outside the volatile prefixes must match.
    """
    a, b = metrics_a or {}, metrics_b or {}
    deltas: dict = {}
    mismatches: "list[str]" = []
    for section in ("counters", "gauges"):
        d, m = _scalar_diff(a.get(section, {}), b.get(section, {}),
                            volatile_ok=True)
        if d:
            deltas[section] = d
        mismatches.extend(m)
    hist_a = {k: (v or {}).get("count")
              for k, v in a.get("histograms", {}).items()}
    hist_b = {k: (v or {}).get("count")
              for k, v in b.get("histograms", {}).items()}
    d, m = _scalar_diff(hist_a, hist_b, volatile_ok=True)
    if d:
        deltas["histogram_counts"] = d
    mismatches.extend(m)
    return {"deltas": deltas, "mismatches": mismatches,
            "identical": not mismatches}


def _compare_outputs(run_a: RunArtifacts,
                     run_b: RunArtifacts) -> dict:
    names_a = {p.name: p for p in run_a.csvs}
    names_b = {p.name: p for p in run_b.csvs}
    only_a = sorted(set(names_a) - set(names_b))
    only_b = sorted(set(names_b) - set(names_a))
    differing: "list[str]" = []
    identical: "list[str]" = []
    for name in sorted(set(names_a) & set(names_b)):
        if names_a[name].read_bytes() == names_b[name].read_bytes():
            identical.append(name)
        else:
            differing.append(name)
    return {"identical": identical, "differing": differing,
            "only_a": only_a, "only_b": only_b,
            "all_identical": not (differing or only_a or only_b)}


def _compare_profiles(run_a: RunArtifacts, run_b: RunArtifacts) -> "dict | None":
    if run_a.trace_path is None or run_b.trace_path is None:
        return None
    profiles = []
    for run in (run_a, run_b):
        rollup, _, _ = _fold_trace(run.trace_path)  # type: ignore[arg-type]
        profiles.append(build_profile(rollup, trace=str(run.trace_path)))
    buckets: dict = {}
    for bucket in PROFILE_BUCKETS:
        sa = profiles[0]["buckets"][bucket]["seconds"]
        sb = profiles[1]["buckets"][bucket]["seconds"]
        buckets[bucket] = {"a_s": sa, "b_s": sb, "delta_s": sb - sa}
    return {"buckets": buckets,
            "window": {"a_s": profiles[0]["window_s"],
                       "b_s": profiles[1]["window_s"]}}


def diff_runs(dir_a: "str | Path", dir_b: "str | Path") -> dict:
    """Compare two run directories.

    ``verdict`` is ``"bit_identical"`` when the stable configuration,
    every deterministic metric and every output CSV agree byte-for-byte
    — the bar a run and its ``--resume``\\ d twin must clear.  Volatile
    telemetry (wall time, cache/retry counters, profile buckets) is
    reported as deltas alongside, never as an identity failure.
    """
    run_a, run_b = discover_run(dir_a), discover_run(dir_b)
    config_identical: "bool | None" = None
    config_diff: "list[str]" = []
    invocation_diff: "list[str]" = []
    if run_a.manifest is not None and run_b.manifest is not None:
        view_a = _identity_view(run_a.manifest)
        view_b = _identity_view(run_b.manifest)
        config_diff = sorted(k for k in set(view_a) | set(view_b)
                             if view_a.get(k) != view_b.get(k))
        config_identical = not config_diff
        cfg_a = run_a.manifest.get("config") or {}
        cfg_b = run_b.manifest.get("config") or {}
        invocation_diff = sorted(
            k for k in VOLATILE_CONFIG_KEYS
            if cfg_a.get(k) != cfg_b.get(k))
    metrics = _compare_metrics(run_a.metrics, run_b.metrics)
    outputs = _compare_outputs(run_a, run_b)
    wall_a = (run_a.manifest or {}).get("wall_time_s")
    wall_b = (run_b.manifest or {}).get("wall_time_s")
    bit_identical = (config_identical is not False
                     and metrics["identical"]
                     and outputs["all_identical"])
    result = {
        "schema": REPORT_SCHEMA,
        "kind": "diff",
        "a": str(Path(dir_a)),
        "b": str(Path(dir_b)),
        "config": {"identical": config_identical, "differing": config_diff,
                   "invocation_differing": invocation_diff},
        "metrics": metrics,
        "outputs": outputs,
        "profile": _compare_profiles(run_a, run_b),
        "wall_time": {"a_s": wall_a, "b_s": wall_b,
                      "delta_s": (wall_b - wall_a
                                  if isinstance(wall_a, (int, float))
                                  and isinstance(wall_b, (int, float))
                                  else None)},
        "verdict": "bit_identical" if bit_identical else "different",
    }
    get_registry().counter("report.diffs").inc()
    return result


# ---------------------------------------------------------------------------
# CLI entry points
# ---------------------------------------------------------------------------

def report_command(argv: "list[str]") -> int:
    """``c2bound report <run-dir>`` — HTML + JSON analysis artifacts."""
    parser = argparse.ArgumentParser(
        prog="c2bound report",
        description="Render a run directory's artifacts (manifest, "
                    "trace, metrics, CSVs) into an HTML + JSON report.")
    parser.add_argument("run_dir", type=Path,
                        help="directory holding one run's outputs")
    parser.add_argument("--out", type=Path, default=None, metavar="DIR",
                        help="where to write report.html/report.json "
                             "(default: the run directory)")
    parser.add_argument("--flame", action="store_true",
                        help="also print a flame-style span tree")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress stdout (files are still written)")
    args = parser.parse_args(argv)
    if not args.run_dir.is_dir():
        print(f"error: {args.run_dir} is not a directory",
              file=sys.stderr)
        return 2
    report = build_report(args.run_dir)
    out_dir = args.out if args.out is not None else args.run_dir
    json_path = write_report(report, out_dir / "report.json")
    html_path = Path(out_dir) / "report.html"
    html_path.parent.mkdir(parents=True, exist_ok=True)
    html_path.write_text(render_html(report), encoding="utf-8")
    if not args.quiet:
        if report["profile"] is not None:
            print(format_profile(report["profile"]))
            if args.flame:
                rollup, _, _ = _fold_trace(
                    args.run_dir / report["artifacts"]["trace"])
                print(render_flame(rollup))
        else:
            print("no trace in run dir; report covers manifest/metrics/"
                  "CSVs only (rerun with --trace for attribution)")
        print(f"saved: {json_path}")
        print(f"saved: {html_path}")
    return 0


def _print_diff(diff: dict) -> None:
    print(f"A: {diff['a']}")
    print(f"B: {diff['b']}")
    print(f"verdict: {diff['verdict']}")
    config = diff["config"]
    if config["identical"] is None:
        print("config: (manifest missing on one side)")
    elif config["identical"]:
        print("config: identical (stable view)")
    else:
        print(f"config: differs in {', '.join(config['differing'])}")
    if config["invocation_differing"]:
        print("invocation (not identity): differs in "
              + ", ".join(config["invocation_differing"]))
    outputs = diff["outputs"]
    print(f"outputs: {len(outputs['identical'])} identical CSV(s), "
          f"{len(outputs['differing'])} differing"
          + (f", only in A: {outputs['only_a']}" if outputs["only_a"]
             else "")
          + (f", only in B: {outputs['only_b']}" if outputs["only_b"]
             else ""))
    if diff["metrics"]["mismatches"]:
        print("deterministic metric mismatches: "
              + ", ".join(diff["metrics"]["mismatches"]))
    wall = diff["wall_time"]
    if wall["delta_s"] is not None:
        print(f"wall time: {wall['a_s']:.3f}s -> {wall['b_s']:.3f}s "
              f"({wall['delta_s']:+.3f}s)")
    profile = diff["profile"]
    if profile:
        moved = {b: d["delta_s"] for b, d in profile["buckets"].items()
                 if abs(d["delta_s"]) > 1e-9}
        if moved:
            print("profile deltas: " + ", ".join(
                f"{b} {d:+.3f}s" for b, d in sorted(
                    moved.items(), key=lambda kv: -abs(kv[1]))))


def diff_command(argv: "list[str]") -> int:
    """``c2bound diff <runA> <runB>`` — 0 iff bit-identical."""
    parser = argparse.ArgumentParser(
        prog="c2bound diff",
        description="Compare two run directories: config identity, "
                    "deterministic metrics, output CSVs, profile "
                    "deltas.  Exit 0 iff bit-identical.")
    parser.add_argument("run_a", type=Path)
    parser.add_argument("run_b", type=Path)
    parser.add_argument("--json", type=Path, default=None, metavar="FILE",
                        help="also write the full diff document to FILE")
    parser.add_argument("--quiet", action="store_true",
                        help="no stdout; exit code only")
    args = parser.parse_args(argv)
    for d in (args.run_a, args.run_b):
        if not d.is_dir():
            print(f"error: {d} is not a directory", file=sys.stderr)
            return 2
    diff = diff_runs(args.run_a, args.run_b)
    if args.json is not None:
        write_report(diff, args.json)
    if not args.quiet:
        _print_diff(diff)
    return 0 if diff["verdict"] == "bit_identical" else 1


def tail_command(argv: "list[str]") -> int:
    """``c2bound tail <trace>`` — live-follow an in-flight sweep."""
    parser = argparse.ArgumentParser(
        prog="c2bound tail",
        description="Follow a growing c2bound.trace/1 file, printing "
                    "live sweep progress.")
    parser.add_argument("trace", type=Path, help="trace JSONL file "
                        "(may not exist yet)")
    parser.add_argument("--interval", type=float, default=0.5,
                        metavar="S", help="poll interval in seconds "
                        "(default 0.5)")
    parser.add_argument("--idle-timeout", type=float, default=30.0,
                        metavar="S",
                        help="stop after S seconds without new events "
                             "(default 30; <=0 waits forever)")
    parser.add_argument("--once", action="store_true",
                        help="drain what is there now and exit")
    args = parser.parse_args(argv)
    progress = ProgressAggregator()
    bus = EventBus()
    bus.subscribe(progress)
    printed: "list[str]" = []

    def emit() -> None:
        line = progress.format_line()
        if not printed or printed[-1] != line:
            printed.append(line)
            print(line, flush=True)

    def on_poll(count: int) -> None:
        if count:
            emit()

    idle = None if args.idle_timeout <= 0 else args.idle_timeout
    follow(args.trace, bus=bus, interval_s=max(0.05, args.interval),
           idle_timeout_s=0.0 if args.once else idle,
           max_polls=1 if args.once else None,
           until=lambda: progress.done, on_poll=on_poll)
    if progress.evaluations or progress.done:
        emit()
        return 0
    print("no events observed", flush=True)
    return 1


def cli_main(argv: "list[str]") -> int:
    """Dispatch ``report`` / ``diff`` / ``tail`` (first element picks)."""
    if not argv:
        print("usage: c2bound {report|diff|tail} ...", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "report":
        return report_command(rest)
    if command == "diff":
        return diff_command(rest)
    if command == "tail":
        return tail_command(rest)
    print(f"unknown analysis command {command!r}", file=sys.stderr)
    return 2
