"""Wall-clock attribution: fold a span tree into ``c2bound.profile/1``.

Answers "where did this sweep's wall-clock actually go?" by
attributing every span's **self-time** (duration minus direct
children, from :class:`repro.obs.stream.SpanRollup`) to one of a small
fixed set of buckets — simulation, sim-cache I/O, IPC + pickling,
queue wait, retry backoff, search-strategy compute, and a
framework-overhead catch-all.
Self-time attribution means nested spans never double-count: the sum
over all buckets equals the sum of root-span durations, so *coverage*
(attributed seconds over the observed trace window) reads directly as
"how much of the run the instrumentation explains".

:data:`PROFILE_SCHEMA` and :data:`PROFILE_BUCKETS` are **literal
anchors**: lint rule C2L003 cross-checks them against the profile
schema and bucket catalog documented in ``docs/OBSERVABILITY.md``,
the same way ``FINGERPRINT_SCHEMA`` is pinned for the sim cache.
Keep them plain literals.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import get_registry
from repro.obs.stream import SpanRollup, TraceReader

__all__ = ["PROFILE_SCHEMA", "PROFILE_BUCKETS", "bucket_for",
           "build_profile", "profile_trace", "write_profile",
           "format_profile", "render_flame"]

#: Schema tag stamped on every profile artifact (bump on layout change).
PROFILE_SCHEMA = "c2bound.profile/1"

#: Bucket -> span-name prefixes, checked in order with first match
#: winning.  A prefix ending in ``.`` matches the whole namespace
#: under it; otherwise the match is exact.  The empty ``framework``
#: tuple is the catch-all: self-time of every unmatched span (batch
#: bookkeeping, search-strategy overhead, experiment glue) lands
#: there.  This dict is a lint-checked literal anchor — it must stay
#: in sync with the "Profile bucket catalog" in docs/OBSERVABILITY.md.
PROFILE_BUCKETS = {
    "simulation": ("sim.run", "dse.chunk.execute", "dse.batch"),
    "cache_io": ("sim.cache.",),
    "ipc": ("dse.chunk.ipc",),
    "queue_wait": ("dse.chunk.queue_wait",),
    "retry_backoff": ("resilience.backoff",),
    "search": ("dse.aps.", "dse.ann.", "dse.ga.", "dse.rsm.",
               "dse.brute."),
    "framework": (),
}


def _matches(name: str, prefix: str) -> bool:
    if prefix.endswith("."):
        return name.startswith(prefix)
    return name == prefix


def bucket_for(name: str) -> str:
    """The profile bucket a span name attributes to."""
    for bucket, prefixes in PROFILE_BUCKETS.items():
        if any(_matches(name, p) for p in prefixes):
            return bucket
    return "framework"


def build_profile(rollup: SpanRollup, *,
                  trace: "str | None" = None) -> dict:
    """Fold a finished rollup into a ``c2bound.profile/1`` document.

    ``buckets[*].seconds`` sum to ``attributed_s`` (the total span
    self-time); ``coverage`` divides that by the observed trace window
    — the ≥0.95 bar the report smoke test holds a traced fig12 run to.
    ``share`` is each bucket's fraction of attributed time.
    """
    self_s = rollup.self_seconds()
    buckets: "dict[str, dict]" = {
        bucket: {"seconds": 0.0, "share": 0.0, "spans": {}}
        for bucket in PROFILE_BUCKETS
    }
    for name, seconds in self_s.items():
        slot = buckets[bucket_for(name)]
        slot["seconds"] += seconds
        slot["spans"][name] = seconds
    attributed = sum(slot["seconds"] for slot in buckets.values())
    if attributed > 0:
        for slot in buckets.values():
            slot["share"] = slot["seconds"] / attributed
            slot["spans"] = dict(sorted(
                slot["spans"].items(), key=lambda kv: -kv[1]))
    window = rollup.window_s
    coverage = attributed / window if window > 0 else 0.0
    registry = get_registry()
    registry.counter("profile.builds").inc()
    registry.gauge("profile.coverage").set(coverage)
    return {
        "schema": PROFILE_SCHEMA,
        "trace": trace,
        "window_s": window,
        "attributed_s": attributed,
        "coverage": coverage,
        "untraced_s": max(0.0, window - attributed),
        "spans_seen": rollup.spans,
        "events_seen": rollup.events,
        "buckets": buckets,
        "spans": {
            name: {"count": agg[0], "total_s": agg[1], "self_s": agg[2]}
            for name, agg in sorted(rollup.aggregates.items())
        },
    }


def profile_trace(path: "str | Path", *,
                  rollup: "SpanRollup | None" = None,
                  ) -> "tuple[dict, SpanRollup]":
    """Profile a trace file on disk.

    Reads the whole trace through :class:`TraceReader` (so a torn
    in-flight tail is simply excluded), folds it into ``rollup`` (a
    fresh one unless given), and returns ``(profile, rollup)`` — the
    rollup is handed back for flame rendering.
    """
    rollup = rollup if rollup is not None else SpanRollup()
    for event in TraceReader(Path(path)).read_all():
        rollup.handle(event)
    return build_profile(rollup, trace=str(path)), rollup


def write_profile(profile: dict, path: "str | Path") -> Path:
    """Write a profile document as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(profile, indent=2, sort_keys=False) + "\n",
                   encoding="utf-8")
    return out


def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def format_profile(profile: dict, *, width: int = 28) -> str:
    """Terminal bucket breakdown (one bar per non-empty bucket)."""
    lines = [f"wall-clock attribution ({profile['schema']})",
             f"  window {profile['window_s']:.3f}s · attributed "
             f"{profile['attributed_s']:.3f}s · coverage "
             f"{100.0 * profile['coverage']:.1f}%"]
    name_w = max((len(b) for b in profile["buckets"]), default=0)
    for bucket, slot in profile["buckets"].items():
        if slot["seconds"] <= 0:
            continue
        lines.append(
            f"  {bucket:<{name_w}} [{_bar(slot['share'], width)}] "
            f"{slot['seconds']:9.3f}s {100.0 * slot['share']:5.1f}%")
    return "\n".join(lines)


def render_flame(rollup: SpanRollup, *, max_depth: int = 6,
                 min_s: float = 0.0, width: int = 24) -> str:
    """Flame-style indented span tree from the rollup's edge totals.

    Each line shows an inclusive-seconds bar scaled to the root total,
    the span name, seconds and call count; children are indented under
    their parent, heaviest first.  Edges thinner than ``min_s`` are
    pruned.  Purely textual — this is the ``--flame`` terminal view.
    """
    roots = rollup.children_of(None)
    total = sum(seconds for _, _, seconds in roots)
    if total <= 0:
        return "(no spans)"
    lines: "list[str]" = []

    def walk(parent: str, depth: int, trail: "tuple[str, ...]") -> None:
        if depth > max_depth:
            return
        for child, count, seconds in rollup.children_of(parent):
            if seconds < min_s or child in trail:
                continue
            indent = "  " * depth
            lines.append(
                f"{indent}[{_bar(seconds / total, width)}] "
                f"{child}  {seconds:.3f}s ×{count}")
            walk(child, depth + 1, trail + (child,))

    for name, count, seconds in roots:
        lines.append(f"[{_bar(seconds / total, width)}] "
                     f"{name}  {seconds:.3f}s ×{count}")
        walk(name, 1, (name,))
    return "\n".join(lines)
