"""Run manifests: machine-readable provenance for every experiment run.

A manifest records what was run (experiment name, argv, configuration,
seed), on what code (git SHA, package version), and what came out
(final metrics snapshot, wall time).  Saved next to an experiment's CSV
under ``results/``, it makes every paper figure auditable: the Fig. 12
bar heights can be cross-checked against the ``dse.evaluations``
counter in the manifest that produced them.

Volatile fields (timestamps, wall time, git SHA) are segregated so that
:func:`stable_view` of two runs with the same configuration and seed
compares equal — the determinism contract the test suite enforces.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

__all__ = ["MANIFEST_SCHEMA", "VOLATILE_KEYS", "RunManifest", "git_sha",
           "package_version", "stable_view"]

MANIFEST_SCHEMA = "c2bound.manifest/1"

#: Keys excluded by :func:`stable_view` (legitimately differ between
#: repeat runs of the same configuration).  ``run_id`` is fresh per
#: invocation and ``lineage`` records interruption/resume provenance —
#: a resumed run must still compare equal to an uninterrupted one.
VOLATILE_KEYS = ("started_at", "wall_time_s", "git_sha", "run_id",
                 "lineage")


def git_sha() -> "str | None":
    """Current commit SHA of the repository holding this package.

    ``None`` when git or the repository is unavailable (e.g. an
    installed wheel) — manifests must never fail a run.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version
        return version("repro")
    except (ImportError, PackageNotFoundError):
        import repro
        return repro.__version__


def stable_view(manifest: dict) -> dict:
    """The manifest minus volatile keys — equal across identical runs."""
    return {k: v for k, v in manifest.items() if k not in VOLATILE_KEYS}


class RunManifest:
    """Builder for one run's manifest.

    Create it when the run starts (wall clock starts ticking), then
    :meth:`finish` or :meth:`write` when it ends.

    Parameters
    ----------
    experiment:
        Name of the experiment (CLI key, benchmark id, ...).
    config:
        JSON-serializable run configuration (flags, parameters).
    seed:
        The run's RNG seed, when one exists.
    argv:
        Command-line arguments, for exact reruns.
    run_id:
        Identifier of this invocation (e.g. the id stamped into
        checkpoint journals), when one exists.
    """

    def __init__(self, experiment: str, *, config: "dict | None" = None,
                 seed: "int | None" = None,
                 argv: "list[str] | None" = None,
                 run_id: "str | None" = None) -> None:
        self.experiment = experiment
        self.config = dict(config) if config else {}
        self.seed = seed
        self.argv = list(argv) if argv is not None else None
        self.run_id = run_id
        self.lineage: dict = {}
        self.started_at = time.time()
        self._t0 = time.perf_counter()

    def set_lineage(self, **fields: object) -> None:
        """Merge interruption/resume provenance into the manifest.

        Typical fields: ``resumed``, ``parent_run_ids`` (runs whose
        checkpoint journals this run restored), ``checkpoints`` (per
        journal: path, run id, method, content hash) and the
        retry/failover counters.  Lineage is a volatile key: it
        documents *how* the run got here without breaking
        :func:`stable_view` equality with an uninterrupted run.
        """
        self.lineage.update(fields)

    def finish(self, *, metrics: "dict | None" = None) -> dict:
        """The completed manifest as a plain dict."""
        return {
            "schema": MANIFEST_SCHEMA,
            "experiment": self.experiment,
            "argv": self.argv,
            "config": self.config,
            "seed": self.seed,
            "run_id": self.run_id,
            "lineage": dict(self.lineage),
            "package_version": package_version(),
            "git_sha": git_sha(),
            "started_at": self.started_at,
            "wall_time_s": time.perf_counter() - self._t0,
            "metrics": metrics if metrics is not None else {},
        }

    def write(self, path: "str | Path", *,
              metrics: "dict | None" = None) -> Path:
        """Write the manifest as sorted, indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.finish(metrics=metrics), indent=2,
                                   sort_keys=True, default=str) + "\n")
        return path
