"""Streaming consumption of ``c2bound.trace/1`` JSONL traces.

The producer side of the observability stack (:mod:`repro.obs.span`,
:mod:`repro.obs.events`) appends whole JSON lines to a trace file while
a run executes.  This module is the *consumer* half: bounded-memory
primitives that follow such a file while it grows and fold its events
into live aggregates — the progress-streaming layer the DSE job server
(ROADMAP item 1) and the ``c2bound tail``/``report`` commands ride on.

- :class:`TraceReader` — a pull-based tailer.  Each :meth:`~TraceReader.poll`
  yields exactly the events appended since the previous poll, never a
  partial line: an append-only writer can only tear the *final* line of
  the file, and the reader simply leaves an un-terminated tail in place
  until the terminating newline arrives (the same torn-tail discipline
  as ``c2bound.checkpoint/1`` replay).  Memory is bounded by one poll's
  read, not the file size.
- :class:`EventBus` — synchronous pub/sub fan-out of trace events to
  subscribed handlers, filterable by event type and name prefix.
- Incremental aggregators — :class:`SpanRollup` (per-name count / total
  / self-time plus parent→child edge rollups, computed online),
  :class:`MetricFold` (counter/histogram-style folds over numeric event
  attributes) and :class:`ProgressAggregator` (live sweep progress from
  ``dse.batch`` spans: evaluations, rate, run completion).

Consumption is observable itself: ``obs.stream.polls`` /
``obs.stream.events`` / ``obs.stream.torn_tails`` / ``obs.stream.resets``
count reader activity in the process-wide registry.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.errors import ObservabilityError
from repro.obs.registry import get_registry

__all__ = ["TraceReader", "EventBus", "SpanRollup", "MetricFold",
           "ProgressAggregator", "follow"]

#: A trace-event consumer: called once per event dict.
Handler = Callable[[dict], None]


class TraceReader:
    """Pull-based tailer over a growing JSONL trace file.

    Parameters
    ----------
    path:
        The trace file.  It may not exist yet; polls before creation
        yield nothing.
    max_bytes:
        Target bytes consumed per :meth:`poll` (rounded down to the
        last complete line), so a reader attached to a huge backlog
        catches up in bounded-memory steps.  A single line longer than
        the budget is still read whole — the longest line is the hard
        memory floor.  ``None`` reads everything available.

    Guarantees:

    - every complete line is yielded exactly once, in file order;
    - a torn (newline-less) tail is never yielded — it stays buffered
      in the *file* (the reader re-reads from its byte offset) until
      the writer completes it;
    - a truncated or replaced file (size shrank below the offset) is
      treated as a fresh trace: the offset resets and subsequent events
      stream from the top (counted in ``obs.stream.resets``).
    """

    def __init__(self, path: "str | Path", *,
                 max_bytes: "int | None" = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ObservabilityError(
                f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.offset = 0
        registry = get_registry()
        self._ctr_polls = registry.counter("obs.stream.polls")
        self._ctr_events = registry.counter("obs.stream.events")
        self._ctr_torn = registry.counter("obs.stream.torn_tails")
        self._ctr_resets = registry.counter("obs.stream.resets")

    def poll(self) -> "list[dict]":
        """Events appended since the last poll (possibly empty)."""
        self._ctr_polls.inc()
        try:
            size = self.path.stat().st_size
        except OSError:
            return []  # not created yet (or momentarily unlinked)
        if size < self.offset:
            # Truncated or rotated underneath us: start over.
            self.offset = 0
            self._ctr_resets.inc()
        if size == self.offset:
            return []
        with self.path.open("rb") as fh:
            fh.seek(self.offset)
            budget = size - self.offset
            if self.max_bytes is not None:
                budget = min(budget, self.max_bytes)
            data = fh.read(budget)
            cut = data.rfind(b"\n")
            while cut < 0 and self.offset + len(data) < size:
                # A single line outgrew max_bytes: the budget is a
                # per-poll target, the longest line is the hard memory
                # floor.  Grow to that line's first newline, no further.
                chunk = fh.read(budget)
                if not chunk:
                    break
                scan_from = len(data)
                data += chunk
                cut = data.find(b"\n", scan_from)
        if cut < 0:
            # Only a torn tail so far: leave it in the file, consume
            # nothing until the writer terminates the line.
            if self.offset + len(data) >= size:
                self._ctr_torn.inc()
            return []
        complete = data[:cut + 1]
        if self.offset + len(data) >= size and cut + 1 < len(data):
            self._ctr_torn.inc()
        self.offset += len(complete)
        events = self._parse(complete)
        self._ctr_events.inc(len(events))
        return events

    def _parse(self, payload: bytes) -> "list[dict]":
        out: list[dict] = []
        for lineno, raw in enumerate(payload.split(b"\n"), start=1):
            if not raw.strip():
                continue
            try:
                obj = json.loads(raw)
            except ValueError as exc:
                raise ObservabilityError(
                    f"trace {self.path} has a corrupt complete line "
                    f"(poll-relative line {lineno}): {exc}") from exc
            if not isinstance(obj, dict):
                raise ObservabilityError(
                    f"trace {self.path} line is {type(obj).__name__}, "
                    "not an object")
            out.append(obj)
        return out

    def read_all(self) -> "list[dict]":
        """Drain everything currently readable (repeated polls)."""
        out: list[dict] = []
        while True:
            batch = self.poll()
            if not batch:
                return out
            out.extend(batch)

    def __iter__(self) -> "Iterator[dict]":
        """Iterate the events currently available (one drain)."""
        return iter(self.read_all())


class _Subscription:
    """One handler plus its event filter."""

    __slots__ = ("handler", "types", "prefixes")

    def __init__(self, handler: Handler,
                 types: "frozenset[str] | None",
                 prefixes: "tuple[str, ...] | None") -> None:
        self.handler = handler
        self.types = types
        self.prefixes = prefixes

    def matches(self, event: dict) -> bool:
        if self.types is not None and event.get("type") not in self.types:
            return False
        if self.prefixes is None:
            return True
        name = event.get("name")
        if not isinstance(name, str):
            return False
        return any(name.startswith(p) for p in self.prefixes)


class EventBus:
    """Synchronous pub/sub dispatch of trace events.

    Handlers are called in subscription order; a handler that raises
    aborts the publish (streaming consumers should be exception-free —
    the aggregators here are).
    """

    def __init__(self) -> None:
        self._subs: "list[_Subscription]" = []

    def subscribe(self, handler: Handler, *,
                  types: "Sequence[str] | None" = None,
                  prefixes: "Sequence[str] | None" = None,
                  ) -> Handler:
        """Register ``handler`` for matching events; returns it.

        ``types`` filters on the event ``type`` (``span`` / ``event`` /
        ``run``); ``prefixes`` on the event ``name``.  ``None`` means
        no filter on that axis.  Objects with a ``handle`` method may
        be passed directly in place of a callable.
        """
        call = getattr(handler, "handle", handler)
        self._subs.append(_Subscription(
            call,
            frozenset(types) if types is not None else None,
            tuple(prefixes) if prefixes is not None else None))
        return handler

    def unsubscribe(self, handler: Handler) -> None:
        """Remove every subscription whose handler is ``handler``."""
        call = getattr(handler, "handle", handler)
        self._subs = [s for s in self._subs
                      if s.handler not in (handler, call)]

    def publish(self, event: dict) -> None:
        """Dispatch one event to every matching subscriber."""
        for sub in self._subs:
            if sub.matches(event):
                sub.handler(event)

    def pump(self, reader: TraceReader) -> int:
        """Poll ``reader`` once and publish everything it yielded."""
        events = reader.poll()
        for event in events:
            self.publish(event)
        return len(events)


class SpanRollup:
    """Online span-tree rollup: per-name totals, self-times and edges.

    Spans arrive in *exit* order (children strictly before their
    parent), so the rollup can attribute **self-time** — a span's
    duration minus its direct children's — with memory bounded by the
    number of spans still open at the producer, not by trace length:
    child durations accumulate under the parent's *id* only until the
    parent's own exit record arrives and retires the entry.

    Aggregates kept per span *name*: count, total seconds, self
    seconds.  Edge rollups (``(parent name, child name) -> count,
    seconds``) reconstruct the shape of the call tree for flame-style
    rendering; root spans appear under the parent name ``None``.
    """

    def __init__(self) -> None:
        #: name -> [count, total_s, self_s]
        self.aggregates: "dict[str, list]" = {}
        #: (parent name | None, child name) -> [count, total_s]
        self.edges: "dict[tuple[str | None, str], list]" = {}
        #: open parent id -> {"total": s, "children": {name: [count, s]}}
        self._pending: "dict[int, dict]" = {}
        self.spans = 0
        self.events = 0
        self.first_ts: "float | None" = None
        self.last_ts: "float | None" = None

    # -- consumption --------------------------------------------------------
    def handle(self, event: dict) -> None:
        """Fold one trace event (any type) into the rollup."""
        etype = event.get("type")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            self._touch(float(ts))
        if etype == "span":
            self._handle_span(event)
        elif etype == "event":
            self.events += 1

    def _touch(self, ts: float, dur: float = 0.0) -> None:
        if self.first_ts is None or ts < self.first_ts:
            self.first_ts = ts
        end = ts + dur
        if self.last_ts is None or end > self.last_ts:
            self.last_ts = end

    def _handle_span(self, event: dict) -> None:
        name = event.get("name")
        dur = event.get("dur_s")
        if not isinstance(name, str) or not isinstance(dur, (int, float)):
            return
        dur = float(dur)
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            self._touch(float(ts), dur)
        self.spans += 1
        span_id = event.get("id")
        parent = event.get("parent")
        # Children exited first: their accumulated time is waiting
        # under our id.  Pop it — the entry is retired here, which is
        # what keeps memory bounded by the open-span count.
        pending = self._pending.pop(span_id, None) if isinstance(
            span_id, int) else None
        child_total = 0.0
        if pending is not None:
            child_total = pending["total"]
            for child_name, (count, seconds) in pending["children"].items():
                edge = self.edges.setdefault((name, child_name), [0, 0.0])
                edge[0] += count
                edge[1] += seconds
        agg = self.aggregates.setdefault(name, [0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += dur
        agg[2] += max(0.0, dur - child_total)
        if isinstance(parent, int):
            slot = self._pending.setdefault(
                parent, {"total": 0.0, "children": {}})
            slot["total"] += dur
            child = slot["children"].setdefault(name, [0, 0.0])
            child[0] += 1
            child[1] += dur
        else:
            edge = self.edges.setdefault((None, name), [0, 0.0])
            edge[0] += 1
            edge[1] += dur

    # -- results ------------------------------------------------------------
    @property
    def window_s(self) -> float:
        """Observed trace window (first event to last span end)."""
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return max(0.0, self.last_ts - self.first_ts)

    def self_seconds(self) -> "dict[str, float]":
        """Per-span-name self-time (duration minus direct children)."""
        return {name: agg[2] for name, agg in self.aggregates.items()}

    def total_seconds(self) -> "dict[str, float]":
        """Per-span-name inclusive duration totals."""
        return {name: agg[1] for name, agg in self.aggregates.items()}

    def children_of(self, parent: "str | None") -> "list[tuple[str, int, float]]":
        """``(child name, count, seconds)`` edges under ``parent``,
        heaviest first."""
        out = [(child, edge[0], edge[1])
               for (p, child), edge in self.edges.items() if p == parent]
        out.sort(key=lambda row: (-row[2], row[0]))
        return out

    def snapshot(self) -> dict:
        """JSON-ready summary of the rollup so far."""
        return {
            "spans": self.spans,
            "events": self.events,
            "window_s": self.window_s,
            "names": {
                name: {"count": agg[0], "total_s": agg[1],
                       "self_s": agg[2]}
                for name, agg in sorted(self.aggregates.items())
            },
        }


class MetricFold:
    """Counter/histogram-style folds over numeric event attributes.

    For every consumed event, each numeric value in ``attrs`` folds
    into an online summary keyed by ``"<event name>.<attr>"``: count,
    sum, min, max.  This is the generic "counter fold" of the
    streaming layer — e.g. folding ``dse.batch`` spans' ``fresh`` /
    ``cached`` attributes reconstructs the budget counters of a run
    that is still in flight.
    """

    def __init__(self) -> None:
        #: "<name>.<attr>" -> [count, sum, min, max]
        self.folds: "dict[str, list]" = {}

    def handle(self, event: dict) -> None:
        """Fold one event's numeric attributes."""
        name = event.get("name")
        attrs = event.get("attrs")
        if not isinstance(name, str) or not isinstance(attrs, dict):
            return
        for attr, value in attrs.items():
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)):
                continue
            fold = self.folds.get(f"{name}.{attr}")
            if fold is None:
                self.folds[f"{name}.{attr}"] = [1, value, value, value]
                continue
            fold[0] += 1
            fold[1] += value
            if value < fold[2]:
                fold[2] = value
            if value > fold[3]:
                fold[3] = value

    def snapshot(self) -> dict:
        """JSON-ready ``{key: {count, sum, min, max}}`` view."""
        return {key: {"count": f[0], "sum": f[1], "min": f[2], "max": f[3]}
                for key, f in sorted(self.folds.items())}


class ProgressAggregator:
    """Live sweep progress from the span stream.

    Watches ``dse.batch`` spans (one per
    ``BudgetedEvaluator.evaluate_batch`` call, attrs ``size`` /
    ``fresh`` / ``cached``) for evaluation throughput, the ``run``
    header for the trace start, and root ``experiment.*`` spans for
    run completion.  Everything is O(1) per event.
    """

    def __init__(self) -> None:
        self.run_name: "str | None" = None
        self.started_ts: "float | None" = None
        self.last_ts: "float | None" = None
        self.batches = 0
        self.fresh = 0
        self.cached = 0
        self.completed: "list[str]" = []

    def handle(self, event: dict) -> None:
        """Fold one trace event into the progress view."""
        etype = event.get("type")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            dur = event.get("dur_s", 0.0)
            end = float(ts) + (float(dur)
                               if isinstance(dur, (int, float)) else 0.0)
            if self.last_ts is None or end > self.last_ts:
                self.last_ts = end
            if self.started_ts is None or float(ts) < self.started_ts:
                self.started_ts = float(ts)
        if etype == "run":
            name = event.get("name")
            if isinstance(name, str):
                self.run_name = name
        elif etype == "span":
            name = event.get("name")
            if not isinstance(name, str):
                return
            if name == "dse.batch":
                attrs = event.get("attrs") or {}
                self.batches += 1
                fresh = attrs.get("fresh")
                cached = attrs.get("cached")
                size = attrs.get("size")
                if isinstance(fresh, (int, float)):
                    self.fresh += int(fresh)
                elif isinstance(size, (int, float)):
                    self.fresh += int(size)
                if isinstance(cached, (int, float)):
                    self.cached += int(cached)
            elif (name.startswith("experiment.")
                    and event.get("parent") is None):
                self.completed.append(name)

    @property
    def evaluations(self) -> int:
        """Fresh + cached evaluations observed so far."""
        return self.fresh + self.cached

    @property
    def elapsed_s(self) -> float:
        """Trace-time seconds between the first and latest event."""
        if self.started_ts is None or self.last_ts is None:
            return 0.0
        return max(0.0, self.last_ts - self.started_ts)

    @property
    def rate(self) -> float:
        """Evaluations per trace-time second (0 before any)."""
        elapsed = self.elapsed_s
        return self.evaluations / elapsed if elapsed > 0 else 0.0

    @property
    def done(self) -> bool:
        """Whether a root experiment span has been observed."""
        return bool(self.completed)

    def snapshot(self) -> dict:
        """JSON-ready progress summary."""
        return {
            "run": self.run_name,
            "elapsed_s": self.elapsed_s,
            "batches": self.batches,
            "evaluations": self.evaluations,
            "fresh": self.fresh,
            "cached": self.cached,
            "rate_per_s": self.rate,
            "completed": list(self.completed),
            "done": self.done,
        }

    def format_line(self) -> str:
        """One human-readable progress line (the ``tail`` output)."""
        head = f"+{self.elapsed_s:7.1f}s"
        body = (f"evals={self.evaluations}"
                f" (fresh={self.fresh} cached={self.cached})"
                f" batches={self.batches} rate={self.rate:.0f}/s")
        if self.done:
            body += f" done [{', '.join(self.completed)}]"
        return f"{head} {body}"


def follow(path: "str | Path", *, bus: EventBus,
           interval_s: float = 0.5,
           idle_timeout_s: "float | None" = 10.0,
           max_polls: "int | None" = None,
           until: "Callable[[], bool] | None" = None,
           sleep: Callable[[float], None] = time.sleep,
           on_poll: "Callable[[int], None] | None" = None) -> int:
    """Pump a trace file through ``bus`` until the run looks finished.

    Polls every ``interval_s`` seconds, stopping when ``until()``
    returns true (checked after each poll), when no new events arrive
    for ``idle_timeout_s`` seconds, or after ``max_polls`` polls —
    whichever comes first.  ``sleep`` is injectable so tests drive the
    loop instantly.  Returns the total number of events published.
    """
    reader = TraceReader(path)
    total = 0
    idle_polls = 0
    polls = 0
    while True:
        count = bus.pump(reader)
        total += count
        polls += 1
        idle_polls = 0 if count else idle_polls + 1
        if on_poll is not None:
            on_poll(count)
        if until is not None and until():
            return total
        if max_polls is not None and polls >= max_polls:
            return total
        if (idle_timeout_s is not None and interval_s > 0
                and idle_polls * interval_s >= idle_timeout_s):
            return total
        sleep(interval_s)
