"""Metric export and the structured CLI reporter.

The reporter is the one output funnel of the ``c2bound`` CLI: tables,
result notes and file-save confirmations all pass through it, so
``--quiet`` silences everything uniformly while ``--metrics-out`` and
manifests still capture the numbers (a note's value is mirrored into
the registry as a gauge before it is printed).
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.span import Tracer, get_tracer

__all__ = ["write_metrics", "timing_table", "Reporter"]


def write_metrics(path: "str | Path",
                  registry: "MetricsRegistry | None" = None) -> Path:
    """Write a registry snapshot as JSON; returns the path."""
    registry = registry if registry is not None else get_registry()
    return registry.write_json(path)


def timing_table(tracer: "Tracer | None" = None):
    """The tracer's aggregated timing summary (``None`` if no spans)."""
    tracer = tracer if tracer is not None else get_tracer()
    return tracer.timing_table()


class Reporter:
    """Structured stdout reporting with uniform ``--quiet`` behavior.

    Parameters
    ----------
    quiet:
        Suppress all stdout output (metrics/gauges are still recorded).
    registry:
        Destination for :meth:`metric` gauges (default: process-wide).
    """

    def __init__(self, *, quiet: bool = False,
                 registry: "MetricsRegistry | None" = None) -> None:
        self.quiet = quiet
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        """The destination registry (resolved late, so tests can swap)."""
        return (self._registry if self._registry is not None
                else get_registry())

    def table(self, result_table, *, trailing_blank: bool = True) -> None:
        """Render a :class:`~repro.io.results.ResultTable` to stdout."""
        if self.quiet:
            return
        print(result_table.render())
        if trailing_blank:
            print()

    def note(self, text: str, *, metric: "str | None" = None,
             value: "float | None" = None) -> None:
        """A one-line bracketed remark, optionally mirrored as a gauge."""
        if metric is not None and value is not None:
            self.metric(metric, value)
        if not self.quiet:
            print(f"[{text}]")

    def metric(self, name: str, value: "int | float") -> None:
        """Record a result value as a gauge (survives ``--quiet``)."""
        self.registry.gauge(name).set(value)

    def saved(self, path: "str | Path") -> None:
        """Confirm a file write."""
        if not self.quiet:
            print(f"[saved {path}]")

    def error(self, text: str) -> None:
        """An error line (stderr; never silenced)."""
        import sys
        print(text, file=sys.stderr)
