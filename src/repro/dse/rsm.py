"""Response-surface-model DSE baseline (related work, paper ref [32]).

Fits a quadratic response surface (full second-order polynomial in the
normalized features) to simulated samples by least squares, predicts the
whole space, and iteratively refines around the predicted optimum —
the ReSPIR-style pareto/refinement loop reduced to the single-objective
case used in Fig. 12's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dse.batch import chunked, resolve_batch_size
from repro.dse.evaluate import BudgetedEvaluator, Evaluator, is_feasible
from repro.dse.space import DesignSpace
from repro.errors import DesignSpaceError
from repro.obs import get_registry, get_tracer

__all__ = ["RSMResult", "response_surface_search"]


@dataclass(frozen=True)
class RSMResult:
    """Outcome of the RSM search.

    Attributes
    ----------
    best_config / best_cost:
        Best *simulated* configuration found.
    evaluations:
        Distinct simulations performed.
    rounds:
        Refinement iterations executed.
    """

    best_config: dict
    best_cost: float
    evaluations: int
    rounds: int


def _quad_features(x: np.ndarray) -> np.ndarray:
    """[1, x_i, x_i*x_j (i<=j)] feature expansion."""
    x = np.atleast_2d(x)
    n, d = x.shape
    cols = [np.ones((n, 1)), x]
    for i in range(d):
        for j in range(i, d):
            cols.append((x[:, i] * x[:, j])[:, None])
    return np.hstack(cols)


def response_surface_search(
    space: DesignSpace,
    evaluator: Evaluator,
    *,
    initial_samples: int = 60,
    rounds: int = 4,
    refine_samples: int = 20,
    predict_sample: int = 20000,
    seed: int = 0,
    batch_size: "int | None" = None,
) -> RSMResult:
    """Quadratic-RSM search with local refinement.

    Sample evaluation rides the batch path: feasible samples are
    simulated together in ``batch_size`` chunks, design-rule rejects
    spend nothing.
    """
    if initial_samples < 8:
        raise DesignSpaceError(
            f"initial sample count must be >= 8, got {initial_samples}")
    budget = (evaluator if isinstance(evaluator, BudgetedEvaluator)
              else BudgetedEvaluator(evaluator, method="rsm"))
    batch_size = resolve_batch_size(batch_size)
    rng = np.random.default_rng(seed)
    xs: list[np.ndarray] = []
    ys: list[float] = []

    def simulate(configs: list[dict]) -> None:
        # Design-rule rejects are filtered before the batch: no
        # simulation spent.
        feasible = [c for c in configs if is_feasible(budget, c)]
        for chunk in chunked(feasible, batch_size):
            for c, cost in zip(chunk, budget.evaluate_batch(chunk)):
                if np.isfinite(cost):
                    xs.append(space.as_features(c))
                    ys.append(np.log(cost))

    simulate(space.sample(initial_samples, rng))
    best_config: dict = {}
    best_cost = float("inf")
    rounds_done = 0
    with get_tracer().span("dse.rsm.search", rounds=rounds):
        for r in range(rounds):
            rounds_done = r + 1
            if len(ys) < 8:
                simulate(space.sample(initial_samples, rng))
                continue
            phi = _quad_features(np.vstack(xs))
            coef, *_ = np.linalg.lstsq(phi, np.asarray(ys), rcond=None)
            if space.size <= predict_sample:
                candidates = list(space)
            else:
                candidates = space.sample(predict_sample, rng)
            candidates = [c for c in candidates if is_feasible(budget, c)]
            feats = _quad_features(
                np.vstack([space.as_features(c) for c in candidates]))
            pred = feats @ coef
            order = np.argsort(pred)
            # Simulate the top predictions plus fresh exploration samples.
            top = [candidates[int(i)] for i in order[:refine_samples]]
            simulate(top)
            simulate(space.sample(max(refine_samples // 2, 1), rng))
            # All of `top` was just simulated, so these are cache reads.
            for c, cost in zip(top, budget.evaluate_batch(top)):
                if cost < best_cost:
                    best_cost = float(cost)
                    best_config = c
    get_registry().gauge("dse.rsm.rounds").set(rounds_done)
    return RSMResult(best_config=best_config, best_cost=best_cost,
                     evaluations=budget.evaluations, rounds=rounds_done)
