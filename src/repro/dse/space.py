"""Discrete design spaces.

The paper's fluidanimate case study explores six parameters
(``A0, A1, A2, N``, issue width, ROB size) with ten optional values each
— a 10^6-point space.  :class:`DesignSpace` provides exact enumeration,
mixed-radix indexing, uniform sampling and nearest-value snapping (used
by APS to map the analytic optimum onto the grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import DesignSpaceError

__all__ = ["Parameter", "DesignSpace"]


@dataclass(frozen=True)
class Parameter:
    """One discrete design parameter.

    Attributes
    ----------
    name:
        Identifier used in configuration dicts.
    values:
        Candidate values, in ascending order.
    """

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise DesignSpaceError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise DesignSpaceError(
                f"parameter {self.name!r} has duplicate values")

    def snap(self, value: float) -> float:
        """Nearest candidate value to ``value``."""
        arr = np.asarray(self.values, dtype=float)
        return self.values[int(np.argmin(np.abs(arr - value)))]

    def snap_down(self, value: float):
        """Largest candidate value <= ``value`` (smallest if none)."""
        arr = np.asarray(self.values, dtype=float)
        below = np.flatnonzero(arr <= value + 1e-12)
        if below.size == 0:
            return self.values[0]
        return self.values[int(below[-1])]

    def neighbors(self, value, radius: int = 1) -> tuple:
        """Candidate values within ``radius`` grid steps of ``value``."""
        if value not in self.values:
            value = self.snap(float(value))
        idx = self.values.index(value)
        lo = max(idx - radius, 0)
        hi = min(idx + radius + 1, len(self.values))
        return self.values[lo:hi]


class DesignSpace:
    """Cartesian product of :class:`Parameter` grids."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise DesignSpaceError("design space needs >= 1 parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise DesignSpaceError(f"duplicate parameter names in {names}")
        self.parameters = tuple(parameters)

    @property
    def size(self) -> int:
        """Total number of configurations."""
        n = 1
        for p in self.parameters:
            n *= len(p.values)
        return n

    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names, in declaration order."""
        return tuple(p.name for p in self.parameters)

    def config_at(self, index: int) -> dict:
        """Configuration at a mixed-radix index in ``[0, size)``."""
        if not 0 <= index < self.size:
            raise DesignSpaceError(
                f"index {index} outside [0, {self.size})")
        config = {}
        for p in reversed(self.parameters):
            index, digit = divmod(index, len(p.values))
            config[p.name] = p.values[digit]
        return {p.name: config[p.name] for p in self.parameters}

    def index_of(self, config: dict) -> int:
        """Inverse of :meth:`config_at`."""
        index = 0
        for p in self.parameters:
            try:
                digit = p.values.index(config[p.name])
            except (KeyError, ValueError) as exc:
                raise DesignSpaceError(
                    f"config has no valid value for {p.name!r}") from exc
            index = index * len(p.values) + digit
        return index

    def __iter__(self) -> Iterator[dict]:
        for i in range(self.size):
            yield self.config_at(i)

    def sample(self, n: int, rng: np.random.Generator) -> list[dict]:
        """``n`` uniform configurations without replacement."""
        if n < 0:
            raise DesignSpaceError(f"sample size must be >= 0, got {n}")
        n = min(n, self.size)
        idx = rng.choice(self.size, size=n, replace=False)
        return [self.config_at(int(i)) for i in idx]

    def snap(self, partial: dict) -> dict:
        """Snap continuous values onto the grid (missing keys -> middle)."""
        out = {}
        for p in self.parameters:
            if p.name in partial:
                value = partial[p.name]
                if value in p.values:
                    out[p.name] = value
                else:
                    out[p.name] = p.snap(float(value))
            else:
                out[p.name] = p.values[len(p.values) // 2]
        return out

    def neighborhood(self, center: dict, *, free: Sequence[str] = (),
                     radius: int = 0) -> list[dict]:
        """Configurations agreeing with ``center`` up to the given slack.

        Parameters named in ``free`` range over their full grids; the
        rest stay within ``radius`` grid steps of the center value.  With
        ``radius=0`` this is exactly the APS move: fix the analytic
        parameters, sweep the simulated ones.
        """
        center = self.snap(center)
        axes: list[tuple] = []
        for p in self.parameters:
            if p.name in free:
                axes.append(p.values)
            else:
                axes.append(p.neighbors(center[p.name], radius))
        configs: list[dict] = []

        def rec(i: int, acc: dict) -> None:
            if i == len(self.parameters):
                configs.append(dict(acc))
                return
            p = self.parameters[i]
            for v in axes[i]:
                acc[p.name] = v
                rec(i + 1, acc)

        rec(0, {})
        return configs

    def as_features(self, config: dict) -> np.ndarray:
        """Normalized feature vector in [0, 1]^d (for ANN/RSM models).

        Numeric parameters normalize by value range; categorical ones by
        grid position.
        """
        feats = np.empty(len(self.parameters), dtype=float)
        for i, p in enumerate(self.parameters):
            try:
                vals = np.asarray(p.values, dtype=float)
                lo, hi = vals.min(), vals.max()
                v = float(config[p.name])
            except (TypeError, ValueError):
                # Categorical: use the grid index.
                lo, hi = 0.0, float(len(p.values) - 1)
                v = float(p.values.index(config[p.name]))
            feats[i] = 0.5 if hi == lo else (v - lo) / (hi - lo)
        return feats
