"""Genetic-algorithm DSE baseline (related work, paper ref [31]).

A standard generational GA over the discrete design grid: tournament
selection, uniform crossover, per-gene mutation, elitism.  Every distinct
fitness evaluation is a simulation; the budgeted evaluator's counter
provides the comparison axis of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dse.batch import chunked, resolve_batch_size
from repro.dse.evaluate import BudgetedEvaluator, Evaluator, is_feasible
from repro.dse.space import DesignSpace
from repro.errors import DesignSpaceError
from repro.obs import get_registry, get_tracer

__all__ = ["GAResult", "genetic_search"]


@dataclass(frozen=True)
class GAResult:
    """Outcome of a GA run.

    Attributes
    ----------
    best_config / best_cost:
        Best individual found.
    evaluations:
        Distinct simulations performed.
    generations:
        Generations executed.
    """

    best_config: dict
    best_cost: float
    evaluations: int
    generations: int


def genetic_search(
    space: DesignSpace,
    evaluator: Evaluator,
    *,
    population: int = 24,
    generations: int = 20,
    mutation_rate: float = 0.15,
    tournament: int = 3,
    elite: int = 2,
    seed: int = 0,
    batch_size: "int | None" = None,
) -> GAResult:
    """Run the GA; returns the best configuration found.

    Each generation is scored through the batch path: feasible
    individuals are evaluated together (in ``batch_size`` chunks),
    design-rule rejects cost ``inf`` without spending a simulation.
    """
    if population < 4:
        raise DesignSpaceError(f"population must be >= 4, got {population}")
    if elite >= population:
        raise DesignSpaceError("elite count must be below the population")
    budget = (evaluator if isinstance(evaluator, BudgetedEvaluator)
              else BudgetedEvaluator(evaluator, method="ga"))
    batch_size = resolve_batch_size(batch_size)
    rng = np.random.default_rng(seed)
    radixes = [len(p.values) for p in space.parameters]

    def decode(genome: np.ndarray) -> dict:
        return {p.name: p.values[int(g)]
                for p, g in zip(space.parameters, genome)}

    def score(pop: np.ndarray) -> np.ndarray:
        configs = [decode(g) for g in pop]
        feasible = np.array([is_feasible(budget, c) for c in configs])
        costs = np.full(len(configs), np.inf)
        todo = [c for c, ok in zip(configs, feasible) if ok]
        if todo:
            costs[np.flatnonzero(feasible)] = np.concatenate(
                [budget.evaluate_batch(chunk)
                 for chunk in chunked(todo, batch_size)])
        return costs

    with get_tracer().span("dse.ga.search", population=population,
                           generations=generations):
        pop = np.stack([
            np.array([rng.integers(0, r) for r in radixes])
            for _ in range(population)])
        costs = score(pop)
        gens_done = 0
        for gen in range(generations):
            gens_done = gen + 1
            order = np.argsort(costs)
            new_pop = [pop[i].copy() for i in order[:elite]]
            while len(new_pop) < population:
                parents = []
                for _ in range(2):
                    contenders = rng.integers(0, population, tournament)
                    parents.append(
                        pop[contenders[np.argmin(costs[contenders])]])
                mask = rng.random(len(radixes)) < 0.5
                child = np.where(mask, parents[0], parents[1])
                mut = rng.random(len(radixes)) < mutation_rate
                for i in np.flatnonzero(mut):
                    child[i] = rng.integers(0, radixes[i])
                new_pop.append(child)
            pop = np.stack(new_pop)
            costs = score(pop)
    get_registry().gauge("dse.ga.generations").set(gens_done)
    best = int(np.argmin(costs))
    return GAResult(
        best_config=decode(pop[best]),
        best_cost=float(costs[best]),
        evaluations=budget.evaluations,
        generations=gens_done,
    )
