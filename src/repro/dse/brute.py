"""Exhaustive design-space sweep (the conventional baseline).

The paper's reference point: traversing the full 10^6-point space took
128 Xeons four weeks.  :func:`brute_force_search` performs the same
traversal against any evaluator (practical here only with the analytic
surrogate, which is the documented substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.evaluate import BudgetedEvaluator, Evaluator
from repro.dse.space import DesignSpace
from repro.obs import get_tracer

__all__ = ["BruteForceResult", "brute_force_search"]


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of a full sweep.

    Attributes
    ----------
    best_config:
        Global optimum over the grid.
    best_cost:
        Its cost.
    evaluations:
        Number of evaluator calls (== space size).
    """

    best_config: dict
    best_cost: float
    evaluations: int


def brute_force_search(space: DesignSpace,
                       evaluator: Evaluator) -> BruteForceResult:
    """Evaluate every configuration; return the global optimum."""
    budget = (evaluator if isinstance(evaluator, BudgetedEvaluator)
              else BudgetedEvaluator(evaluator, method="brute"))
    best_cost = float("inf")
    best_config: dict = {}
    with get_tracer().span("dse.brute.sweep", space_size=space.size):
        for config in space:
            cost = budget.evaluate(config)
            if cost < best_cost:
                best_cost = cost
                best_config = config
    return BruteForceResult(best_config=best_config, best_cost=best_cost,
                            evaluations=budget.evaluations)
