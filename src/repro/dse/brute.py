"""Exhaustive design-space sweep (the conventional baseline).

The paper's reference point: traversing the full 10^6-point space took
128 Xeons four weeks.  :func:`brute_force_search` performs the same
traversal against any evaluator (practical here only with the analytic
surrogate, which is the documented substitution).

The sweep is batched: configurations stream through
``BudgetedEvaluator.evaluate_batch`` in ``batch_size`` chunks, so the
surrogate path vectorizes over NumPy columns and the simulator path can
fan out across a :class:`~repro.dse.batch.ParallelEvaluator` pool.
Design-rule-infeasible points (Eq. 12) are skipped *before* the budget
is charged — a practitioner never submits a simulation that violates
the area budget, so they cost nothing in Fig. 12's meter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dse.batch import chunked, resolve_batch_size
from repro.dse.evaluate import BudgetedEvaluator, Evaluator, is_feasible
from repro.dse.space import DesignSpace
from repro.obs import get_tracer

__all__ = ["BruteForceResult", "brute_force_search"]


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of a full sweep.

    Attributes
    ----------
    best_config:
        Global optimum over the grid.
    best_cost:
        Its cost.
    evaluations:
        Number of evaluator calls (== number of feasible points).
    skipped_infeasible:
        Points rejected by the design-rule check without simulating.
    """

    best_config: dict
    best_cost: float
    evaluations: int
    skipped_infeasible: int = 0


def brute_force_search(space: DesignSpace, evaluator: Evaluator, *,
                       batch_size: "int | None" = None) -> BruteForceResult:
    """Evaluate every feasible configuration; return the global optimum."""
    budget = (evaluator if isinstance(evaluator, BudgetedEvaluator)
              else BudgetedEvaluator(evaluator, method="brute"))
    batch_size = resolve_batch_size(batch_size)
    best_cost = float("inf")
    best_config: dict = {}
    skipped = 0
    with get_tracer().span("dse.brute.sweep", space_size=space.size,
                           batch_size=batch_size):
        for chunk in chunked(space, batch_size):
            feasible = [c for c in chunk if is_feasible(budget, c)]
            skipped += len(chunk) - len(feasible)
            if not feasible:
                continue
            costs = budget.evaluate_batch(feasible)
            i = int(np.argmin(costs))
            if costs[i] < best_cost:
                best_cost = float(costs[i])
                best_config = feasible[i]
    return BruteForceResult(best_config=best_config, best_cost=best_cost,
                            evaluations=budget.evaluations,
                            skipped_infeasible=skipped)
