"""Design-space exploration (paper Sections III-D, IV).

- :mod:`repro.dse.space` — discrete design spaces (the paper's 6
  parameters x 10 values = 10^6 points).
- :mod:`repro.dse.evaluate` — evaluators ("simulators") with budget
  accounting: the real :class:`repro.sim.CMPSimulator` and a calibrated
  analytic surrogate standing in for the paper's 128-Xeon/4-week full
  sweep.
- :mod:`repro.dse.aps` — the APS (Analysis Plus Simulation) algorithm of
  Fig. 6: analytic solve for ``(A0, A1, A2, N)``, simulation only for the
  remaining microarchitecture parameters.
- :mod:`repro.dse.ann` — the Ipek-style artificial-neural-network
  predictor (a from-scratch NumPy MLP) used as the paper's comparison
  baseline.
- :mod:`repro.dse.ga` / :mod:`repro.dse.rsm` — the related-work
  genetic-algorithm and response-surface baselines.
- :mod:`repro.dse.brute` — exhaustive sweep.
- :mod:`repro.dse.batch` — the batched + parallel evaluation engine
  every search method rides on (``evaluate_batch`` protocol, process
  pool, ``--workers``/``--batch-size`` defaults); contract in
  ``docs/DSE_PERFORMANCE.md``.
- :mod:`repro.dse.fabric` — the sharded work-stealing sweep fabric
  (``--fabric``): deterministic shard ownership over the simulation
  store's hash ranges, idle-worker stealing for stragglers, and
  bit-identical results under any steal schedule.
"""

from repro.dse.space import DesignSpace, Parameter
from repro.dse.evaluate import (
    BatchEvaluator,
    BudgetedEvaluator,
    Evaluator,
    SimulatorEvaluator,
    SurrogateEvaluator,
    batch_evaluate,
    canonical_key,
    is_feasible,
)
from repro.dse.batch import (
    BatchDefaults,
    ParallelEvaluator,
    chunked,
    get_batch_defaults,
    make_pool_evaluator,
    resolve_batch_size,
    resolve_workers,
    set_batch_defaults,
)
from repro.dse.fabric import FabricEvaluator, config_shard
from repro.dse.brute import brute_force_search
from repro.dse.aps import APSExplorer, APSResult
from repro.dse.ann import ANNPredictorSearch, MLPRegressor
from repro.dse.ga import genetic_search
from repro.dse.rsm import response_surface_search

__all__ = [
    "DesignSpace",
    "Parameter",
    "Evaluator",
    "BatchEvaluator",
    "BudgetedEvaluator",
    "SimulatorEvaluator",
    "SurrogateEvaluator",
    "ParallelEvaluator",
    "FabricEvaluator",
    "BatchDefaults",
    "batch_evaluate",
    "canonical_key",
    "chunked",
    "config_shard",
    "make_pool_evaluator",
    "get_batch_defaults",
    "set_batch_defaults",
    "resolve_batch_size",
    "resolve_workers",
    "is_feasible",
    "brute_force_search",
    "APSExplorer",
    "APSResult",
    "ANNPredictorSearch",
    "MLPRegressor",
    "genetic_search",
    "response_surface_search",
]
