"""Batched + parallel evaluation engine for design-space exploration.

Three pieces turn the one-point-at-a-time ``evaluate(config)`` walk into
the batch pipeline every search method now rides on:

- :func:`chunked` — deterministic batch slicing (input order preserved).
- :class:`ParallelEvaluator` — fans scalar evaluations (the expensive
  :class:`~repro.dse.evaluate.SimulatorEvaluator` path) across a
  ``concurrent.futures`` process pool in chunks, reassembling results in
  input order; with one worker it degenerates to an inline loop with no
  pool at all.
- :class:`BatchDefaults` — the process-wide ``--workers``/``--batch-size``
  knobs the CLI sets and the search methods resolve against when a call
  site does not pass explicit values.

Determinism contract: every evaluator is a pure function of the
configuration, so chunking and worker count change *wall time only* —
costs, best configurations and budget counts are identical for any
``batch_size >= 1`` and any ``workers >= 1``
(``tests/dse/test_batch_equivalence.py`` enforces this differentially).

Budget accounting stays in the parent process: a
:class:`~repro.dse.evaluate.BudgetedEvaluator` wrapping a
``ParallelEvaluator`` deduplicates and charges configurations *before*
dispatch, so workers only ever see configurations that are genuinely
being paid for.  (Worker-side ``sim.*`` registry metrics accumulate in
the worker processes and are not merged back — the ``dse.*`` meters the
experiments rely on are parent-side.)
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.dse.evaluate import batch_evaluate, is_feasible
from repro.errors import (
    DeadlineExceededError,
    DesignSpaceError,
    FatalError,
    ReproError,
    TransientError,
)
from repro.obs import get_registry, get_tracer
from repro.resilience.policy import Deadline, RetryPolicy, retry_call

__all__ = ["BatchDefaults", "ParallelEvaluator", "chunked",
           "get_batch_defaults", "set_batch_defaults", "resolve_batch_size",
           "resolve_workers", "make_pool_evaluator"]


def chunked(items: Iterable, size: int) -> Iterator[list]:
    """Yield consecutive chunks of at most ``size`` items, in order.

    Streams lazily, so a 10^6-point design-space iterator is never
    materialized whole — peak memory is one chunk.
    """
    if size < 1:
        raise DesignSpaceError(f"chunk size must be >= 1, got {size}")
    it = iter(items)
    while True:
        chunk = list(islice(it, size))
        if not chunk:
            return
        yield chunk


@dataclass
class BatchDefaults:
    """Process-wide fallbacks for the batch engine's two knobs.

    Attributes
    ----------
    batch_size:
        Configurations per :meth:`BudgetedEvaluator.evaluate_batch` call
        when a search is not told otherwise.  Bounds peak memory of the
        vectorized surrogate path; large enough that NumPy dominates.
    workers:
        Process count for :class:`ParallelEvaluator` instances that do
        not pin their own.  ``1`` (the default) means inline, no pool.
    fabric:
        Route pooled evaluation through the sharded work-stealing
        fabric (:class:`~repro.dse.fabric.FabricEvaluator`) instead of
        fixed chunking — the CLI's ``--fabric`` flag.  Consumed by
        :func:`make_pool_evaluator`.
    steal:
        Work-stealing toggle for fabric evaluators that do not pin
        their own (the CLI's ``--steal``/``--no-steal``).
    """

    batch_size: int = 2048
    workers: int = 1
    fabric: bool = False
    steal: bool = True


_defaults = BatchDefaults()


def get_batch_defaults() -> BatchDefaults:
    """The live defaults object (mutated by :func:`set_batch_defaults`)."""
    return _defaults


def set_batch_defaults(*, batch_size: "int | None" = None,
                       workers: "int | None" = None,
                       fabric: "bool | None" = None,
                       steal: "bool | None" = None) -> BatchDefaults:
    """Update the process-wide knobs (the CLI's ``--batch-size``/``--workers``
    /``--fabric``/``--steal``).

    Only the arguments given change; sizes must be >= 1.  Returns the
    defaults object for convenience.
    """
    if batch_size is not None:
        if batch_size < 1:
            raise DesignSpaceError(
                f"batch size must be >= 1, got {batch_size}")
        _defaults.batch_size = int(batch_size)
    if workers is not None:
        if workers < 1:
            raise DesignSpaceError(f"workers must be >= 1, got {workers}")
        _defaults.workers = int(workers)
    if fabric is not None:
        _defaults.fabric = bool(fabric)
    if steal is not None:
        _defaults.steal = bool(steal)
    return _defaults


def resolve_batch_size(batch_size: "int | None") -> int:
    """An explicit batch size, or the process-wide default."""
    if batch_size is None:
        return _defaults.batch_size
    if batch_size < 1:
        raise DesignSpaceError(f"batch size must be >= 1, got {batch_size}")
    return int(batch_size)


def resolve_workers(workers: "int | None") -> int:
    """An explicit worker count, or the process-wide default."""
    if workers is None:
        return _defaults.workers
    if workers < 1:
        raise DesignSpaceError(f"workers must be >= 1, got {workers}")
    return int(workers)


def make_pool_evaluator(inner, *, workers: "int | None" = None,
                        fabric: "bool | None" = None,
                        steal: "bool | None" = None, **kwargs):
    """The pooled wrapper the process-wide defaults call for.

    ``fabric``/``steal``/``workers`` default to :class:`BatchDefaults`
    (what the CLI flags install); extra keyword arguments pass through
    to the chosen wrapper.  Returns a
    :class:`~repro.dse.fabric.FabricEvaluator` when the fabric is on,
    else a :class:`ParallelEvaluator` — both are drop-in
    batch evaluators with identical results, so call sites never branch.
    """
    if fabric is None:
        fabric = _defaults.fabric
    if fabric:
        # Imported lazily — fabric.py imports from this module.
        from repro.dse.fabric import FabricEvaluator
        if steal is None:
            steal = _defaults.steal
        return FabricEvaluator(inner, workers=workers, steal=steal, **kwargs)
    return ParallelEvaluator(inner, workers=workers, **kwargs)


def _evaluate_chunk(evaluator,
                    configs: list[dict]) -> "tuple[list[float], float, float]":
    """Worker-side unit of work: scalar-evaluate one chunk, in order.

    Module-level so the pool can pickle it; the evaluator rides along in
    the task payload (cheap for the simulator evaluator: a workload
    spec plus a chip dataclass).

    Returns ``(costs, t_start, exec_s)``: ``t_start`` is the worker's
    ``perf_counter`` reading when it picked the task up and ``exec_s``
    the pure evaluation time.  On Linux ``perf_counter`` is
    ``CLOCK_MONOTONIC`` — comparable across processes — which lets the
    parent split submit-to-result latency into queue-wait, execute and
    IPC components (clamped to zero where the clocks disagree).
    """
    t_start = time.perf_counter()
    costs = [float(evaluator.evaluate(c)) for c in configs]
    return costs, t_start, time.perf_counter() - t_start


class ParallelEvaluator:
    """Fan ``inner.evaluate`` across a process pool, batch-in/batch-out.

    Parameters
    ----------
    inner:
        The wrapped evaluator.  It is pickled with each task, so it must
        be picklable when ``workers > 1`` (both bundled evaluators are).
    workers:
        Process count; ``None`` resolves against
        :func:`get_batch_defaults` at construction time.  With one
        worker no pool is created and batches run inline.
    chunk_size:
        Configurations per pool task.  ``None`` picks
        ``ceil(len(batch) / (4 * workers))`` per call — enough tasks
        that a slow chunk cannot serialize the batch, few enough that
        pickling does not dominate.
    retry_policy:
        Governs chunk resubmission after worker crashes / timeouts /
        transient errors (default :class:`~repro.resilience.policy.RetryPolicy`).
    chunk_timeout:
        Per-chunk deadline in seconds; a chunk that does not complete in
        time is treated as lost (the pool is rebuilt — running tasks
        cannot be cancelled) and resubmitted.  ``None`` waits forever.
    sleep:
        Backoff hook between recovery rounds — injectable so tests run
        instantly while recording the deterministic schedule.
    deadline:
        Optional overall time budget (a job's, when the server runs
        sweeps): retry backoffs are clamped to it and recovery rounds
        stop at expiry with :class:`~repro.errors.DeadlineExceededError`
        instead of sleeping past it.

    The pool is created lazily on the first parallel batch and reused
    until :meth:`close` (also a context manager).  Results are
    reassembled in submission order, so the output array is identical
    to a sequential loop — only faster.

    Fault tolerance: chunks lost to a dead worker
    (``BrokenProcessPool``), a per-chunk timeout, or a pickled-back
    :class:`~repro.errors.TransientError` are resubmitted to a rebuilt
    pool up to ``retry_policy.max_attempts`` times; beyond that a chunk
    degrades to serial in-parent evaluation, so one poisoned input
    cannot sink a sweep.  Because every evaluator is a pure function of
    the configuration, recovery changes wall time only — results remain
    bit-identical to a fault-free run.  :class:`~repro.errors.FatalError`
    (and any exception outside the taxonomy) propagates immediately.
    """

    def __init__(self, inner, *, workers: "int | None" = None,
                 chunk_size: "int | None" = None,
                 retry_policy: "RetryPolicy | None" = None,
                 chunk_timeout: "float | None" = None,
                 sleep: Callable[[float], None] = time.sleep,
                 deadline: "Deadline | None" = None) -> None:
        self.inner = inner
        self.deadline = deadline
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise DesignSpaceError(
                f"chunk size must be >= 1, got {chunk_size}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise DesignSpaceError(
                f"chunk timeout must be > 0 or None, got {chunk_timeout}")
        self.chunk_size = chunk_size
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.chunk_timeout = chunk_timeout
        self._sleep = sleep
        self._pool: "ProcessPoolExecutor | None" = None
        registry = get_registry()
        self._ctr_timeouts = registry.counter("resilience.chunk_timeouts")
        self._ctr_crashes = registry.counter("resilience.worker_crashes")
        self._ctr_rebuilds = registry.counter("resilience.pool_rebuilds")
        self._ctr_serial = registry.counter("resilience.serial_fallbacks")
        self._ctr_retries = registry.counter("resilience.retries")

    def evaluate(self, config: dict) -> float:
        """Scalar pass-through (no pool round-trip for one point).

        Transient failures retry in-process under the evaluator's
        policy; fatal ones propagate.
        """
        return retry_call(lambda: float(self.inner.evaluate(config)),
                          policy=self.retry_policy, sleep=self._sleep,
                          deadline=self.deadline, what="scalar evaluation")

    def is_feasible(self, config: dict) -> bool:
        """Delegates to the wrapped evaluator's design-rule check."""
        return is_feasible(self.inner, config)

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        """Costs of ``configs`` in input order, computed in parallel."""
        configs = list(configs)
        if not configs:
            return np.empty(0, dtype=float)
        if self.workers == 1:
            return self._serial_batch(configs, what="inline batch")
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, -(-len(configs) // (4 * self.workers)))
        chunks = list(chunked(configs, chunk_size))
        if len(chunks) == 1:
            return self._serial_batch(configs, what="single-chunk batch")
        parts = self._run_chunks(chunks)
        return np.array([cost for part in parts for cost in part],
                        dtype=float)

    def _serial_batch(self, configs: list[dict], *, what: str) -> np.ndarray:
        """In-parent batch with transient-failure retries."""
        return retry_call(lambda: batch_evaluate(self.inner, configs),
                          policy=self.retry_policy, sleep=self._sleep,
                          deadline=self.deadline, what=what)

    def _run_chunks(self, chunks: "list[list[dict]]") -> "list[list[float]]":
        """Dispatch chunks to the pool, recovering lost or failed ones.

        Round-based: each round submits every unfinished chunk, collects
        results, and classifies failures.  A broken pool or a timed-out
        chunk forces a pool rebuild (in-flight chunks of that round may
        be charged an attempt collaterally — the bound still holds
        because the fallback is exact serial evaluation).  Chunks that
        exhaust ``retry_policy.max_attempts`` pool attempts degrade to
        serial in-parent evaluation.
        """
        policy = self.retry_policy
        tracer = get_tracer()
        n = len(chunks)
        results: "list[list[float] | None]" = [None] * n
        attempts = [0] * n
        remaining = list(range(n))
        round_no = 0
        while remaining:
            round_no += 1
            pool = self._ensure_pool()
            # Per-chunk latency decomposition: submit time here, done
            # time via callback (fires when the result lands, not when
            # the in-order collection loop gets around to it), worker
            # start/exec times shipped back in the result tuple.
            t_submit: "dict[int, float]" = {}
            t_done: "dict[int, float]" = {}
            futures = {}
            for i in remaining:
                t_submit[i] = time.perf_counter()
                fut = pool.submit(_evaluate_chunk, self.inner, chunks[i])
                fut.add_done_callback(
                    lambda _f, i=i: t_done.setdefault(
                        i, time.perf_counter()))
                futures[i] = fut
            failed: list[int] = []
            need_rebuild = False
            for i in remaining:
                try:
                    costs, t_start, exec_s = futures[i].result(
                        timeout=self.chunk_timeout)
                    results[i] = costs
                    self._record_chunk_timing(
                        i, len(chunks[i]), t_submit[i], t_done.get(i),
                        t_start, exec_s)
                except FuturesTimeoutError:
                    self._ctr_timeouts.inc()
                    tracer.event("resilience.chunk_lost", chunk=i,
                                 reason="timeout")
                    failed.append(i)
                    need_rebuild = True
                except BrokenExecutor:
                    self._ctr_crashes.inc()
                    tracer.event("resilience.chunk_lost", chunk=i,
                                 reason="crash")
                    failed.append(i)
                    need_rebuild = True
                except TransientError:
                    tracer.event("resilience.chunk_lost", chunk=i,
                                 reason="transient")
                    failed.append(i)
                except FatalError:
                    raise
            if need_rebuild:
                self._teardown_pool(kill=True)
                self._ctr_rebuilds.inc()
            retry_now: list[int] = []
            serial_now: list[int] = []
            for i in failed:
                attempts[i] += 1
                if attempts[i] >= policy.max_attempts:
                    serial_now.append(i)
                else:
                    retry_now.append(i)
                    self._ctr_retries.inc()
            for i in serial_now:
                # Pool attempts exhausted: the chunk is excluded from the
                # pool and evaluated in-parent (graceful degradation).
                self._ctr_serial.inc()
                tracer.event("resilience.serial_fallback", chunk=i,
                             attempts=attempts[i])
                results[i] = list(
                    self._serial_batch(chunks[i],
                                       what=f"serial fallback chunk {i}"))
            remaining = retry_now
            if remaining:
                if self.deadline is not None and self.deadline.expired:
                    raise DeadlineExceededError(
                        f"job deadline expired with {len(remaining)} "
                        "chunk(s) still recovering",
                        timeout_s=self.deadline.timeout_s
                        if self.deadline.timeout_s is not None
                        else float("nan"))
                with tracer.span("resilience.backoff", round=round_no,
                                 chunks=len(remaining)):
                    self._sleep(policy.delay(round_no))
        return [part for part in results if part is not None]

    def _record_chunk_timing(self, chunk: int, size: int, t_submit: float,
                             t_done: "float | None", t_start: float,
                             exec_s: float) -> None:
        """Attribute one completed chunk's latency to three spans.

        ``dse.chunk.queue_wait`` (submit to worker pick-up),
        ``dse.chunk.execute`` (worker-side evaluation) and
        ``dse.chunk.ipc`` (the remainder of submit-to-result: task and
        result pickling plus result-queue transit).  All three are
        parented under the live ``dse.batch`` span; no-ops while
        tracing is disabled.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        queue_wait = max(0.0, t_start - t_submit)
        exec_s = max(0.0, exec_s)
        tracer.record_span("dse.chunk.queue_wait", queue_wait,
                           chunk=chunk, size=size)
        tracer.record_span("dse.chunk.execute", exec_s,
                           chunk=chunk, size=size)
        if t_done is not None:
            ipc = max(0.0, (t_done - t_submit) - queue_wait - exec_s)
            tracer.record_span("dse.chunk.ipc", ipc,
                               chunk=chunk, size=size)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _teardown_pool(self, *, kill: bool = False) -> None:
        """Shut the current pool down, hard-stopping workers if asked.

        ``ProcessPoolExecutor`` cannot cancel a running task, so after a
        timeout the only way to reclaim the worker is to terminate it;
        ``shutdown`` then reaps processes and queue threads so nothing
        leaks across rebuilds.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            procs = getattr(pool, "_processes", None) or {}
            for proc in list(procs.values()):
                if proc.is_alive():
                    proc.terminate()
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except (OSError, RuntimeError):
            # A pool whose workers died mid-shutdown can raise while
            # reaping; the processes are gone either way.
            pass

    def close(self) -> None:
        """Shut the pool down and flush the inner evaluator's cache
        buffer (idempotent, broken-pool safe) — a graceful stop must
        not strand write-behind entries in memory."""
        self._teardown_pool()
        store = getattr(self.inner, "cache", None)
        flush = getattr(store, "flush", None)
        if flush is not None:
            flush()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-time best effort
        try:
            self.close()
        except (ReproError, OSError, RuntimeError):
            # Interpreter teardown: modules may be half-gone; anything
            # else (e.g. KeyboardInterrupt) should surface.
            pass
