"""Job-shaped entrypoints over the shared batch/search path.

The job server (:mod:`repro.service`) does not call searches directly:
it speaks *job specs* — plain JSON dicts naming a design space, an
evaluator and a search method — and this module turns one spec into one
deterministic, checkpointed, deadline-bounded search run:

- :func:`build_space` / :func:`build_evaluator` — spec → live objects,
  with validation errors raised as
  :class:`~repro.errors.InvalidParameterError` (the server maps them to
  400s);
- :func:`run_job` — execute a spec through
  :class:`~repro.dse.evaluate.BudgetedEvaluator` over the shared batch
  path, journaled into a per-job ``c2bound.checkpoint/1`` file so a
  SIGKILL'd server re-runs the job with a warm ledger and lands on
  bit-identical results with exactly-once budget accounting;
- :class:`JobGuard` — the between-batch hook that enforces the job's
  :class:`~repro.resilience.policy.Deadline` (raising
  :class:`~repro.errors.DeadlineExceededError`) and streams progress
  events in the ``c2bound.trace/1`` format;
- :class:`DegradedSimEvaluator` — the degradation ladder's bottom rung:
  when the simulator tier is circuit-broken, answer from
  :class:`~repro.sim.cache_store.SimCacheStore` hits where possible and
  from the analytic surrogate otherwise, marking the result
  ``degraded``.

Determinism contract: a job result is a pure function of its spec (and
the evaluator's model version), never of the server's schedule — which
is what makes crash/restart resume testable by byte comparison.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse.batch import ParallelEvaluator
from repro.dse.brute import brute_force_search
from repro.dse.evaluate import (
    BudgetedEvaluator,
    SimulatorEvaluator,
    SurrogateEvaluator,
    batch_evaluate,
    is_feasible,
)
from repro.dse.space import DesignSpace, Parameter
from repro.errors import DeadlineExceededError, InvalidParameterError
from repro.laws.gfunction import PowerLawG
from repro.obs import get_registry
from repro.resilience.policy import Deadline

__all__ = ["RESULT_SCHEMA", "JobGuard", "DegradedSimEvaluator",
           "build_space", "build_evaluator", "run_job"]

RESULT_SCHEMA = "c2bound.job-result/1"

_WORKLOADS = ("tmm", "stencil", "spmv", "fft", "gups")


def build_space(spec: dict) -> DesignSpace:
    """A :class:`~repro.dse.space.DesignSpace` from its wire form.

    Wire form: ``{"params": [{"name": "a0", "values": [1.0, 2.0]}, …]}``.
    """
    params = spec.get("params")
    if not isinstance(params, list) or not params:
        raise InvalidParameterError(
            "space spec needs a non-empty 'params' list")
    out = []
    for item in params:
        if not isinstance(item, dict) or "name" not in item:
            raise InvalidParameterError(
                f"space parameter {item!r} needs 'name' and 'values'")
        values = item.get("values")
        if not isinstance(values, list) or not values:
            raise InvalidParameterError(
                f"space parameter {item['name']!r} needs non-empty 'values'")
        out.append(Parameter(str(item["name"]), tuple(values)))
    return DesignSpace(tuple(out))


def _build_app(spec: "dict | None") -> ApplicationProfile:
    spec = dict(spec) if spec else {}
    g_exp = float(spec.pop("g_exponent", 1.0))
    g_name = str(spec.pop("g_name", "job"))
    allowed = {"name", "f_seq", "f_mem", "concurrency", "overlap_ratio",
               "ic0", "base_working_set_kib"}
    unknown = set(spec) - allowed
    if unknown:
        raise InvalidParameterError(
            f"unknown app fields {sorted(unknown)}")
    return ApplicationProfile(g=PowerLawG(g_exp, name=g_name), **spec)


def _build_machine(spec: "dict | None") -> MachineParameters:
    spec = dict(spec) if spec else {}
    allowed = {"total_area", "shared_area", "pollack_k0", "pollack_phi0",
               "cycle_time"}
    unknown = set(spec) - allowed
    if unknown:
        raise InvalidParameterError(
            f"unknown machine fields {sorted(unknown)}")
    return MachineParameters(**spec)


def _build_workload(name: str, args: "dict | None"):
    from repro.workloads import (
        BandSpMV,
        FFTWorkload,
        GUPS,
        Stencil1D,
        TiledMatMul,
    )

    factories: "dict[str, Callable]" = {
        "tmm": TiledMatMul, "stencil": Stencil1D, "spmv": BandSpMV,
        "fft": FFTWorkload, "gups": GUPS}
    factory = factories.get(name)
    if factory is None:
        raise InvalidParameterError(
            f"unknown workload {name!r}; known: {sorted(factories)}")
    try:
        return factory(**(args or {}))
    except TypeError as exc:
        raise InvalidParameterError(
            f"bad workload arguments for {name!r}: {exc}") from exc


def build_evaluator(spec: dict, *, degraded: bool = False):
    """The evaluator a job spec names.

    ``{"type": "surrogate", "app": {…}, "machine": {…}, "noise": 0.0}``
    builds the analytic surrogate; ``{"type": "simulator", "workload":
    "tmm", "workload_args": {…}, "seed": 1234, "cache": <path|None>}``
    the event-driven simulator.  With ``degraded=True`` the simulator
    path is replaced by :class:`DegradedSimEvaluator` (cache hits +
    analytic fallback); the surrogate path is unaffected — it *is* the
    analytic tier.
    """
    if not isinstance(spec, dict):
        raise InvalidParameterError("evaluator spec must be an object")
    kind = spec.get("type", "surrogate")
    if kind == "surrogate":
        return SurrogateEvaluator(
            _build_app(spec.get("app")), _build_machine(spec.get("machine")),
            noise=float(spec.get("noise", 0.0)),
            objective=str(spec.get("objective", "auto")))
    if kind == "simulator":
        sim = SimulatorEvaluator(
            _build_workload(str(spec.get("workload", "tmm")),
                            spec.get("workload_args")),
            seed=int(spec.get("seed", 1234)),
            cache=spec.get("cache", "default"))
        if not degraded:
            return sim
        fallback = SurrogateEvaluator(
            _build_app(spec.get("app")), _build_machine(spec.get("machine")),
            noise=0.0)
        return DegradedSimEvaluator(sim, fallback)
    raise InvalidParameterError(
        f"unknown evaluator type {kind!r} (surrogate|simulator)")


class DegradedSimEvaluator:
    """Cache-or-analytical stand-in for a circuit-broken simulator tier.

    ``evaluate`` first consults the simulator's
    :class:`~repro.sim.cache_store.SimCacheStore` by content key — a
    hit is the *exact* simulation answer (``service.degraded.cache_hits``)
    — and otherwise falls back to the analytic surrogate
    (``service.degraded.analytical``).  Results produced through this
    evaluator are approximate whenever any fallback fired, which is why
    job results carry an explicit ``degraded`` marker instead of
    pretending.
    """

    def __init__(self, sim: SimulatorEvaluator,
                 fallback: SurrogateEvaluator) -> None:
        self.sim = sim
        self.fallback = fallback
        registry = get_registry()
        self._ctr_cache = registry.counter("service.degraded.cache_hits")
        self._ctr_analytical = registry.counter("service.degraded.analytical")

    def is_feasible(self, config: dict) -> bool:
        """The analytic area budget — checkable without simulating."""
        return is_feasible(self.fallback, config)

    def evaluate(self, config: dict) -> float:
        store = self.sim.cache
        if store is not None:
            cost = store.get(self.sim.cache_key_for(config))
            if cost is not None:
                self._ctr_cache.inc()
                return float(cost)
        self._ctr_analytical.inc()
        return float(self.fallback.evaluate(config))


class JobGuard:
    """Deadline + progress wrapper the job's batches flow through.

    Sits between :class:`~repro.dse.evaluate.BudgetedEvaluator` and the
    real evaluator: before every batch it checks the job's
    :class:`~repro.resilience.policy.Deadline` (raising
    :class:`~repro.errors.DeadlineExceededError` so retries and sweeps
    cannot outlive the job) and after every batch it reports progress
    through ``on_progress(evaluations_so_far)`` — the server streams
    those as ``c2bound.trace/1`` events.
    """

    def __init__(self, inner, *, deadline: "Deadline | None" = None,
                 on_progress: "Callable[[int], None] | None" = None) -> None:
        self.inner = inner
        self.deadline = deadline
        self.on_progress = on_progress
        self.evaluated = 0

    def _check(self) -> None:
        if self.deadline is not None and self.deadline.expired:
            raise DeadlineExceededError(
                "job deadline expired mid-sweep",
                timeout_s=self.deadline.timeout_s
                if self.deadline.timeout_s is not None else float("nan"))

    def _progress(self, n: int) -> None:
        self.evaluated += n
        if self.on_progress is not None:
            self.on_progress(self.evaluated)

    def is_feasible(self, config: dict) -> bool:
        return is_feasible(self.inner, config)

    def evaluate(self, config: dict) -> float:
        self._check()
        cost = float(self.inner.evaluate(config))
        self._progress(1)
        return cost

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        self._check()
        costs = batch_evaluate(self.inner, configs)
        self._progress(len(costs))
        return costs


def _canonical_config(config: dict) -> dict:
    """A config dict in sorted-key order with JSON-stable values."""
    out = {}
    for key in sorted(config):
        value = config[key]
        out[key] = float(value) if isinstance(value, float) else value
    return out


def run_job(spec: dict, *, checkpoint_path=None, resume: bool = False,
            workers: int = 1, deadline: "Deadline | None" = None,
            degraded: bool = False,
            on_progress: "Callable[[int], None] | None" = None) -> dict:
    """Execute one job spec; returns the canonical result document.

    Parameters
    ----------
    spec:
        The job's wire spec: ``kind`` (only ``"sweep"`` today),
        ``space``, ``evaluator``, optional ``batch_size``.
    checkpoint_path:
        Per-job ``c2bound.checkpoint/1`` journal.  With ``resume=True``
        an existing journal is replayed first, so re-running after a
        crash charges each evaluation exactly once and reproduces the
        interrupted run bit-for-bit.
    workers:
        Process-pool width for the evaluation tier (1 = inline).
    deadline:
        The job's overall time budget, enforced between batches and
        propagated into the retry layer so backoffs cannot outlive it.
    degraded:
        Serve the degradation ladder instead of the simulator tier
        (see :class:`DegradedSimEvaluator`); stamped into the result.
    """
    kind = spec.get("kind", "sweep")
    if kind != "sweep":
        raise InvalidParameterError(
            f"unknown job kind {kind!r} (only 'sweep' is implemented)")
    space = build_space(spec.get("space") or {})
    evaluator = build_evaluator(spec.get("evaluator") or {},
                                degraded=degraded)
    ev_type = (spec.get("evaluator") or {}).get("type", "surrogate")
    guard = JobGuard(evaluator, deadline=deadline, on_progress=on_progress)
    pooled = None
    inner = guard
    if workers > 1:
        pooled = ParallelEvaluator(guard, workers=workers,
                                   deadline=deadline)
        inner = pooled
    budget = BudgetedEvaluator(inner, method=str(spec.get("method", "brute")),
                               checkpoint=checkpoint_path, resume=resume)
    batch_size = spec.get("batch_size")
    try:
        result = brute_force_search(
            space, budget,
            batch_size=int(batch_size) if batch_size else None)
    finally:
        budget.close()
        if pooled is not None:
            pooled.close()
    return {
        "schema": RESULT_SCHEMA,
        "kind": kind,
        "best_config": _canonical_config(result.best_config),
        "best_cost": repr(float(result.best_cost)),
        "evaluations": int(result.evaluations),
        "skipped_infeasible": int(result.skipped_infeasible),
        "space_size": int(space.size),
        "evaluator": str(ev_type),
        "degraded": bool(degraded),
    }
