"""Design-point evaluators with simulation-budget accounting.

Two evaluators are provided:

- :class:`SimulatorEvaluator` runs the real event-driven CMP simulator on
  a workload — the honest but expensive path (used for the scaled-down
  validation experiments).
- :class:`SurrogateEvaluator` is a calibrated analytic stand-in for the
  paper's ground-truth full sweep (128 Xeons for 4 weeks, which we cannot
  re-run): the C2-Bound per-instruction time extended with issue-width
  and ROB effects, plus a small deterministic per-configuration
  perturbation emulating cycle-accurate simulation variability.  It is
  cheap enough to evaluate a 10^6-point space exactly.

Both are wrapped by :class:`BudgetedEvaluator`, whose counter is the
"number of simulations" reported in Fig. 12.

Batch protocol
--------------
Every evaluator answers ``evaluate(config) -> float``; evaluators that
can amortize work across points additionally answer
``evaluate_batch(configs) -> np.ndarray`` (costs in input order).
:func:`batch_evaluate` dispatches to the native batch path when present
and falls back to a scalar loop otherwise, so callers can batch
unconditionally.  The determinism contract: the scalar path is *defined*
as a batch of one, so batched and sequential evaluation agree
bit-for-bit (see ``docs/DSE_PERFORMANCE.md``).
"""

from __future__ import annotations

import time
from typing import Protocol, Sequence

import numpy as np

from repro.core.camat_model import CAMATModel
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import DesignSpaceError
from repro.obs import get_registry, get_tracer
from repro.sim.cmp import simulate_chip_cost
from repro.sim.config import CoreMicroConfig, SimulatedChip
from repro.workloads.base import Workload

__all__ = ["Evaluator", "BatchEvaluator", "BudgetedEvaluator",
           "SurrogateEvaluator", "SimulatorEvaluator", "batch_evaluate",
           "canonical_key"]


class Evaluator(Protocol):
    """Maps a configuration dict to a performance cost (lower = better)."""

    def evaluate(self, config: dict) -> float:
        """Execution-time-like cost of one design point."""
        ...


class BatchEvaluator(Protocol):
    """An :class:`Evaluator` with a native batch path."""

    def evaluate(self, config: dict) -> float:
        """Execution-time-like cost of one design point."""
        ...

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        """Costs of many design points, in input order."""
        ...


def canonical_key(config: dict) -> tuple:
    """Order-independent identity of a configuration.

    Two dicts describing the same design point (whatever their key
    insertion order) share one key — the identity used by the
    :class:`BudgetedEvaluator` memoization cache, so budget accounting
    is exact under batching and duplicates are never re-simulated.
    """
    return tuple(sorted(config.items()))


def batch_evaluate(evaluator, configs: Sequence[dict]) -> np.ndarray:
    """Evaluate ``configs`` through the fastest path the evaluator has.

    Dispatches to a native ``evaluate_batch`` when the evaluator
    provides one (the vectorized surrogate, the process-pool wrapper,
    the budgeted cache) and otherwise falls back to a sequential
    ``evaluate`` loop.  Costs come back in input order either way.
    """
    configs = list(configs)
    if not configs:
        return np.empty(0, dtype=float)
    hook = getattr(evaluator, "evaluate_batch", None)
    if hook is not None:
        costs = np.asarray(hook(configs), dtype=float)
        if costs.shape != (len(configs),):
            raise DesignSpaceError(
                f"evaluate_batch returned shape {costs.shape} for "
                f"{len(configs)} configs")
        return costs
    return np.array([float(evaluator.evaluate(c)) for c in configs],
                    dtype=float)


def is_feasible(evaluator, config: dict) -> bool:
    """Design-rule feasibility of a configuration, without simulating.

    Evaluators may expose ``is_feasible(config)`` (e.g. the silicon-area
    budget of Eq. 12, which a practitioner checks before ever submitting
    a simulation).  Evaluators without the hook treat everything as
    feasible.
    """
    hook = getattr(evaluator, "is_feasible", None)
    if hook is None:
        return True
    return bool(hook(config))


class BudgetedEvaluator:
    """Counting/caching wrapper — the Fig. 12 simulation meter.

    Repeated evaluations of the same configuration are cached and counted
    once (a stored simulation result is free to reread).  ``evaluations``
    counts fresh simulations only — the number Fig. 12 reports — while
    ``evaluations_cached`` counts the free rereads separately; both are
    mirrored into the process-wide metrics registry as
    ``dse.evaluations`` / ``dse.evaluations_cached`` (plus a labeled
    series per method when ``method`` is given).

    :meth:`evaluate_batch` shares the same cache and counters, so the
    Fig. 12 invariant (budget = number of *distinct* configurations
    simulated) holds identically whether a search walks points one at a
    time or in batches: within a batch the first occurrence of a new
    configuration is charged, every duplicate and every already-cached
    point is a free reread.

    Checkpointing: when wired to a
    :class:`~repro.resilience.checkpoint.CheckpointJournal` (explicitly
    via ``checkpoint=``, or implicitly through the process-wide
    :func:`~repro.resilience.checkpoint.set_checkpoint_defaults` the
    CLI's ``--checkpoint`` flag installs), every charged evaluation is
    ledgered the moment the budget is spent.  On resume, the restored
    ledger pre-warms the cache; as the deterministic search replays, the
    first hit on each restored point is *accounted as the fresh charge
    it was in the interrupted run* (no journal re-append, no double
    charge), so budget counters, metrics and results end bit-identical
    to a run that was never interrupted.
    """

    def __init__(self, inner: Evaluator, *,
                 method: "str | None" = None,
                 checkpoint=None, resume: bool = False) -> None:
        self.inner = inner
        self.method = method
        self.evaluations = 0
        self.evaluations_cached = 0
        self._cache: dict[tuple, float] = {}
        self._restored_pending: set[tuple] = set()
        registry = get_registry()
        self._ctr_fresh = registry.counter("dse.evaluations")
        self._ctr_cached = registry.counter("dse.evaluations_cached")
        self._ctr_fresh_method = (
            registry.counter("dse.evaluations", method=method)
            if method is not None else None)
        self._hist_batch_size = registry.histogram("dse.batch_size")
        self._hist_batch_seconds = registry.histogram("dse.batch_seconds")
        self._ctr_restored = registry.counter(
            "resilience.checkpoint.restored")
        self._journal = None
        self._attach_checkpoint(checkpoint, resume)

    def _attach_checkpoint(self, checkpoint, resume: bool) -> None:
        """Resolve the journal wiring (explicit arg or process defaults).

        ``checkpoint`` may be a live
        :class:`~repro.resilience.checkpoint.CheckpointJournal`, a path
        (fresh journal, or resumed when ``resume=True``), or ``None`` —
        in which case the process-wide checkpoint defaults decide
        (usually: journaling off).
        """
        # Imported lazily: repro.resilience.faults imports this module.
        from repro.resilience.checkpoint import (
            CheckpointJournal,
            journal_for_method,
        )

        entries: list = []
        if checkpoint is None:
            opened = journal_for_method(self.method)
            if opened is None:
                return
            self._journal, entries = opened
        elif hasattr(checkpoint, "append_evals"):
            # Any live journal-shaped object attaches directly: a
            # CheckpointJournal, the fabric's per-shard ShardedJournal,
            # or a test double — the budget path only ever appends.
            self._journal = checkpoint
        elif resume:
            self._journal, entries, _states = CheckpointJournal.open_resume(
                checkpoint, method=self.method)
        else:
            self._journal = CheckpointJournal.create(
                checkpoint, method=self.method)
        if entries:
            self.restore(entries)

    def restore(self, entries) -> None:
        """Warm the cache from a journal ledger of ``(key, cost)`` pairs.

        Restored points are marked pending-replay: the search's first
        hit on each is accounted as the fresh charge it was in the
        interrupted run (and not re-journaled), keeping budget
        accounting exactly-once across the interruption.
        """
        restored = 0
        for key, cost in entries:
            if key in self._cache:
                continue
            self._cache[key] = float(cost)
            self._restored_pending.add(key)
            restored += 1
        self._ctr_restored.inc(restored)

    def close(self) -> None:
        """Flush and close the attached journal, if any (idempotent)."""
        if self._journal is not None:
            self._journal.close()

    def evaluate(self, config: dict) -> float:
        key = canonical_key(config)
        cached = self._cache.get(key)
        if cached is not None:
            if key in self._restored_pending:
                # Replay of a checkpointed charge: account it as the
                # fresh evaluation it was; the journal already has it.
                self._restored_pending.discard(key)
                self.evaluations += 1
                self._ctr_fresh.inc()
                if self._ctr_fresh_method is not None:
                    self._ctr_fresh_method.inc()
            else:
                self.evaluations_cached += 1
                self._ctr_cached.inc()
            return cached
        cost = float(self.inner.evaluate(config))
        self._cache[key] = cost
        self.evaluations += 1
        self._ctr_fresh.inc()
        if self._ctr_fresh_method is not None:
            self._ctr_fresh_method.inc()
        if self._journal is not None:
            self._journal.append_eval(key, cost)
        return cost

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        """Batched :meth:`evaluate`: same cache, same budget, one call.

        Only configurations absent from the cache (deduplicated inside
        the batch by :func:`canonical_key`) reach the inner evaluator —
        through its own batch path when it has one — and only those are
        charged to the budget.  Costs return in input order.
        """
        configs = list(configs)
        if not configs:
            return np.empty(0, dtype=float)
        out = np.empty(len(configs), dtype=float)
        fresh_configs: list[dict] = []
        fresh_index: dict[tuple, int] = {}
        slots: list[tuple[int, int]] = []
        n_cached = 0
        n_replayed = 0
        for i, config in enumerate(configs):
            key = canonical_key(config)
            cached = self._cache.get(key)
            if cached is not None:
                out[i] = cached
                if key in self._restored_pending:
                    # Replay of a checkpointed charge (see restore()).
                    self._restored_pending.discard(key)
                    n_replayed += 1
                else:
                    n_cached += 1
                continue
            j = fresh_index.get(key)
            if j is None:
                j = len(fresh_configs)
                fresh_index[key] = j
                fresh_configs.append(config)
            else:
                n_cached += 1  # duplicate within the batch: free reread
            slots.append((i, j))
        with get_tracer().span("dse.batch", size=len(configs),
                               fresh=len(fresh_configs), cached=n_cached):
            t0 = time.perf_counter()
            if fresh_configs:
                costs = batch_evaluate(self.inner, fresh_configs)
                for key, j in fresh_index.items():
                    self._cache[key] = float(costs[j])
                for i, j in slots:
                    out[i] = costs[j]
            elapsed = time.perf_counter() - t0
        n_charged = len(fresh_configs) + n_replayed
        if n_charged:
            self.evaluations += n_charged
            self._ctr_fresh.inc(n_charged)
            if self._ctr_fresh_method is not None:
                self._ctr_fresh_method.inc(n_charged)
        if fresh_configs and self._journal is not None:
            # Ledger the batch the moment it is charged (one flush).
            self._journal.append_evals(
                [(key, float(costs[j])) for key, j in fresh_index.items()])
        if n_cached:
            self.evaluations_cached += n_cached
            self._ctr_cached.inc(n_cached)
        self._hist_batch_size.observe(len(configs))
        self._hist_batch_seconds.observe(elapsed)
        return out

    def is_feasible(self, config: dict) -> bool:
        """Delegates to the wrapped evaluator's design-rule check."""
        return is_feasible(self.inner, config)

    def reset(self) -> None:
        """Zero both budget counters and drop the cache.

        Only this evaluator's local counters are reset; the registry's
        process-wide series are cumulative by design.
        """
        self.evaluations = 0
        self.evaluations_cached = 0
        self._cache.clear()
        self._restored_pending.clear()


class SurrogateEvaluator:
    """Analytic ground-truth stand-in for exhaustive sweeps.

    Cost model (per scaled instruction, times the Sun-Ni scaling):

    - Pollack CPI from ``a0``, floored at ``1/issue_width`` (a narrow
      core cannot exceed its issue bandwidth even with large area);
    - C-AMAT from the cache areas with *effective* concurrency
      ``C_eff = 1 + (C_app - 1) * rob_factor`` where the ROB factor
      saturates as the window grows (memory-level parallelism needs ROB
      reach);
    - a deterministic pseudo-random perturbation of ``noise`` relative
      magnitude derived from the configuration hash (simulation
      "measurement error").

    Parameters
    ----------
    app, machine:
        The analytic model inputs.
    camat_model:
        Cache-area-to-latency model (defaults shared with the optimizer).
    noise:
        Relative perturbation amplitude (0 disables).
    rob_half:
        ROB size at which half the application concurrency is exposed.
    """

    def __init__(self, app: ApplicationProfile, machine: MachineParameters,
                 camat_model: "CAMATModel | None" = None, *,
                 noise: float = 0.02, rob_half: float = 48.0,
                 objective: str = "auto") -> None:
        if noise < 0:
            raise DesignSpaceError(f"noise must be >= 0, got {noise}")
        if objective not in ("auto", "time", "time_per_work"):
            raise DesignSpaceError(
                "objective must be 'auto', 'time' or 'time_per_work', "
                f"got {objective!r}")
        self.app = app
        self.machine = machine
        self.camat_model = camat_model if camat_model is not None else CAMATModel()
        self.noise = noise
        self.rob_half = rob_half
        if objective == "auto":
            # Match the paper's case split: scalable workloads are judged
            # by throughput (time per unit work), fixed/sublinear ones by
            # raw time — the same objective the analytic optimizer uses,
            # so every DSE method competes on one metric.
            objective = ("time_per_work" if app.g.at_least_linear()
                         else "time")
        self.objective = objective

    def is_feasible(self, config: dict) -> bool:
        """Eq. 12 area budget plus positivity — checkable pre-simulation."""
        a0 = float(config["a0"])
        a1 = float(config["a1"])
        a2 = float(config["a2"])
        n = int(config["n"])
        if min(a0, a1, a2) <= 0 or n < 1:
            return False
        total = n * (a0 + a1 + a2) + self.machine.shared_area
        return total <= self.machine.total_area * (1.0 + 1e-9)

    def evaluate(self, config: dict) -> float:
        # Defined as a batch of one so the scalar and batched paths run
        # the same NumPy kernel and agree bit-for-bit.
        return float(self.evaluate_batch([config])[0])

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        """Vectorized evaluation of arbitrary configurations.

        One NumPy pass over column arrays of the batch — the Eq. 12
        feasibility mask (infeasible points cost ``inf``), the C2-Bound
        cost and the deterministic perturbation all evaluate
        elementwise, so ``evaluate_batch(cs)[i] == evaluate(cs[i])``
        exactly.
        """
        configs = list(configs)
        if not configs:
            return np.empty(0, dtype=float)
        return self._evaluate_columns(
            np.array([float(c["a0"]) for c in configs]),
            np.array([float(c["a1"]) for c in configs]),
            np.array([float(c["a2"]) for c in configs]),
            np.array([float(int(c["n"])) for c in configs]),
            np.array([float(int(c.get("issue_width", 4)))
                      for c in configs]),
            np.array([float(int(c.get("rob_size", 128)))
                      for c in configs]),
        )

    def _evaluate_columns(self, a0, a1, a2, n, issue, rob) -> np.ndarray:
        """The shared cost kernel over parameter column arrays."""
        m = self.machine
        feasible = ((np.minimum(np.minimum(a0, a1), a2) > 0)
                    & (n >= 1) & (issue >= 1) & (rob >= 1)
                    & (n * (a0 + a1 + a2) + m.shared_area
                       <= m.total_area * (1.0 + 1e-9)))
        # Infeasible lanes may divide by zero or take sqrt of negatives;
        # their results are masked to inf below, so silence the noise.
        with np.errstate(all="ignore"):
            safe_a1 = np.where(a1 > 0, a1, 1.0)
            safe_a2 = np.where(a2 > 0, a2, 1.0)
            safe_n = np.where(n >= 1, n, 1.0)
            cpi = np.maximum(m.pollack_k0 / np.sqrt(a0) + m.pollack_phi0,
                             1.0 / issue)
            rob_factor = rob / (rob + self.rob_half)
            c_eff = 1.0 + (self.app.concurrency - 1.0) * rob_factor
            amat = np.asarray(self.camat_model.amat(safe_a1, safe_a2),
                              dtype=float)
            stall = (self.app.f_mem * (amat / c_eff)
                     * (1.0 - self.app.overlap_ratio))
            g_n = np.asarray(self.app.g(safe_n), dtype=float)
            scale = self.app.f_seq + g_n * (1.0 - self.app.f_seq) / safe_n
            cost = self.app.ic0 * (cpi + stall) * scale * m.cycle_time
            if self.objective == "time_per_work":
                cost = cost / g_n
            if self.noise:
                cost = cost * (1.0 + self.noise * _value_noise(
                    a0, a1, a2, n, issue, rob))
        return np.where(feasible, cost, np.inf)

    def evaluate_grid(self, space) -> "np.ndarray":
        """Vectorized evaluation of an entire design space.

        Returns costs in the space's mixed-radix enumeration order —
        ``costs[i] == evaluate(space.config_at(i))`` (exactly: the
        scalar, batched and grid paths share one kernel).  This is
        what makes the paper's 10^6-point "full sweep" affordable as a
        ground truth.
        """
        names = space.names
        required = ("a0", "a1", "a2", "n", "issue_width", "rob_size")
        missing = [r for r in required if r not in names]
        if missing:
            raise DesignSpaceError(
                f"surrogate grid evaluation needs parameters {missing}")
        grids = [np.asarray(p.values, dtype=float)
                 for p in space.parameters]
        mesh = np.meshgrid(*grids, indexing="ij")
        values = {name: m.ravel() for name, m in zip(names, mesh)}
        return self._evaluate_columns(
            values["a0"], values["a1"], values["a2"], values["n"],
            values["issue_width"], values["rob_size"])


class SimulatorEvaluator:
    """Evaluate configurations with the event-driven CMP simulator.

    The configuration dict supplies ``n``, ``a1``/``a2`` (cache areas,
    converted to capacities) or direct ``l1_kib``/``l2_kib``, and the
    microarchitecture parameters ``issue_width``/``rob_size``.  The cost
    is execution cycles per (simulated) instruction so different core
    counts are comparable.

    ``a0`` (core-logic area) is accepted but has no simulated effect of
    its own: in simulation a core's area is *expressed* through the
    issue-width/ROB axes (which the paper's 6-parameter space sweeps
    separately), while ``a0`` feeds the analytic Pollack term and the
    Eq. 12 feasibility check.

    ``cache`` selects the persistent simulation store consulted before
    running the simulator (see :mod:`repro.sim.cache_store`): the
    default ``"default"`` resolves the process-wide store *at
    construction* — so a pickled evaluator carries the store into
    process-pool workers — ``None`` disables caching, and a path or
    :class:`~repro.sim.cache_store.SimCacheStore` selects a specific
    store.  Caching only changes wall time, never results or budget
    accounting: :class:`BudgetedEvaluator` still charges the first
    occurrence of every configuration.
    """

    def __init__(self, workload: Workload, *, seed: int = 1234,
                 base_chip: "SimulatedChip | None" = None,
                 kib_per_area_unit: float = 64.0,
                 cache="default") -> None:
        from repro.sim.cache_store import resolve_store

        self.workload = workload
        self.seed = seed
        self.base_chip = base_chip if base_chip is not None else SimulatedChip()
        self.kib_per_area_unit = kib_per_area_unit
        self.cache = resolve_store(cache)

    def chip_for(self, config: dict) -> SimulatedChip:
        """The simulator configuration a design point maps to."""
        from dataclasses import replace

        n = int(config.get("n", self.base_chip.n_cores))
        issue = int(config.get("issue_width", self.base_chip.core.issue_width))
        rob = int(config.get("rob_size", self.base_chip.core.rob_size))
        l1_kib = float(config.get(
            "l1_kib", config.get("a1", 0.5) * self.kib_per_area_unit))
        l2_kib = float(config.get(
            "l2_kib", config.get("a2", 8.0) * self.kib_per_area_unit))
        return replace(
            self.base_chip,
            n_cores=n,
            core=CoreMicroConfig(issue_width=issue, rob_size=rob),
            l1=replace(self.base_chip.l1, size_kib=max(l1_kib, 1.0)),
            l2_slice=replace(self.base_chip.l2_slice,
                             size_kib=max(l2_kib, 2.0)),
        )

    def cache_key_for(self, config: dict) -> str:
        """Content address of this configuration's simulation result.

        The same key :func:`~repro.sim.cache_store.sim_cache_key`
        derives inside the cached evaluation path, exposed so the sweep
        fabric can shard design points by the *store's* own hash ranges
        — fabric ownership and disk-shard ownership then coincide, and
        the owning worker is the only writer of its shard directories.
        Computable whether or not a store is attached.
        """
        from repro.sim.cache_store import sim_cache_key
        return sim_cache_key(self.chip_for(config), self.workload, self.seed)

    def cache_provenance(self) -> dict:
        """The provenance fields a persisted entry carries (see
        :func:`~repro.sim.cache_store.cached_simulate_chip_cost`)."""
        return {"seed": int(self.seed),
                "workload": type(self.workload).__qualname__}

    def evaluate(self, config: dict) -> float:
        chip = self.chip_for(config)
        if self.cache is not None:
            from repro.sim.cache_store import cached_simulate_chip_cost
            return cached_simulate_chip_cost(chip, self.workload, self.seed,
                                             self.cache)
        return simulate_chip_cost(chip, self.workload, self.seed)


def _value_noise(a0, a1, a2, n, issue, rob):
    """Deterministic pseudo-noise in [-1, 1] from the parameter values.

    A shader-style sin hash: identical for scalar and array inputs, so
    :meth:`SurrogateEvaluator.evaluate` and
    :meth:`SurrogateEvaluator.evaluate_grid` agree bit-for-bit.
    """
    x = (np.asarray(a0, dtype=float) * 12.9898
         + np.asarray(a1, dtype=float) * 78.233
         + np.asarray(a2, dtype=float) * 37.719
         + np.asarray(n, dtype=float) * 4.581
         + np.asarray(issue, dtype=float) * 93.989
         + np.asarray(rob, dtype=float) * 0.5318)
    u = np.mod(np.sin(x) * 43758.5453123, 1.0)
    return 2.0 * u - 1.0
