"""The APS (Analysis Plus Simulation) algorithm (paper Fig. 6).

Flow, exactly as the paper's pseudocode:

1. *Characterize*: the application profile (``f_mem``, C-AMAT/``C``,
   ``f_seq``, ``g``) is given — measured by the detector or the trace
   analyzer.
2. *Optimize*: solve Eq. 13 analytically, with the case split on
   ``g(N)`` vs ``O(N)``, producing the skeleton ``(A0, A1, A2, N)``.
3. *Simulate*: snap the skeleton to the design grid and simulate only
   the adjacent region — the remaining microarchitecture parameters
   (issue width, ROB size) over their full grids, optionally +-
   ``radius`` grid steps of slack on the analytic parameters.

The number of simulations is therefore ``(grid of simulated params) x
(neighborhood of analytic params)`` — 10^2 out of 10^6 in the paper's
case study, the four-orders-of-magnitude narrowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.camat_model import CAMATModel
from repro.core.optimizer import C2BoundOptimizer, DesignPoint
from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse.batch import chunked, resolve_batch_size
from repro.dse.evaluate import BudgetedEvaluator, Evaluator
from repro.dse.space import DesignSpace
from repro.errors import DesignSpaceError
from repro.obs import get_registry, get_tracer

__all__ = ["APSResult", "APSExplorer"]


@dataclass(frozen=True)
class APSResult:
    """Outcome of an APS exploration.

    Attributes
    ----------
    analytic:
        The analytic optimum (step 2's output).
    best_config:
        Best simulated configuration in the narrowed region.
    best_cost:
        Its evaluator cost.
    simulations:
        Simulations spent in step 3.
    candidates:
        Size of the narrowed region (== simulations when all are run).
    space_size:
        Size of the full design space, for the Fig. 12 comparison.
    """

    analytic: DesignPoint
    best_config: dict
    best_cost: float
    simulations: int
    candidates: int
    space_size: int

    @property
    def narrowing_factor(self) -> float:
        """Full-space size over simulations (Fig. 12's headline ratio)."""
        if self.simulations == 0:
            return float("inf")
        return self.space_size / self.simulations


class APSExplorer:
    """Run APS over a design space.

    Parameters
    ----------
    app, machine:
        Model inputs (step 1's characterization).
    space:
        The discrete design space; must contain parameters named
        ``a0, a1, a2, n`` (analytic) — remaining parameters are the
        simulated ones.
    camat_model:
        Optional cache model shared with the optimizer.
    """

    ANALYTIC_PARAMS = ("a0", "a1", "a2", "n")

    def __init__(self, app: ApplicationProfile, machine: MachineParameters,
                 space: DesignSpace,
                 camat_model: "CAMATModel | None" = None) -> None:
        missing = [p for p in self.ANALYTIC_PARAMS if p not in space.names]
        if missing:
            raise DesignSpaceError(
                f"design space lacks analytic parameters {missing}")
        self.app = app
        self.machine = machine
        self.space = space
        self.optimizer = C2BoundOptimizer(app, machine, camat_model)

    def analytic_skeleton(self) -> DesignPoint:
        """Step 2: the Eq. 13 optimum (continuous)."""
        n_values = [int(v) for v in
                    self.space.parameters[self.space.names.index("n")].values]
        return self.optimizer.optimize(
            n_min=min(n_values), n_max=max(n_values)).best

    def _feasible_center(self, analytic) -> dict:
        """Snap the continuous optimum to the grid without violating Eq. 12.

        ``n`` snaps to the nearest grid value; the three areas snap
        *downward* (largest grid value not exceeding the continuous
        optimum) so that ``n * (a0 + a1 + a2) + Ac <= A`` is preserved —
        snapping areas upward could silently leave the feasible region
        and make every neighborhood candidate infeasible.
        """
        params = {p.name: p for p in self.space.parameters}
        n = params["n"].snap(float(analytic.config.n))
        center = {
            "n": n,
            "a0": params["a0"].snap_down(analytic.config.a0),
            "a1": params["a1"].snap_down(analytic.config.a1),
            "a2": params["a2"].snap_down(analytic.config.a2),
        }
        budget_area = self.machine.total_area - self.machine.shared_area
        # If the snapped n is larger than the analytic n, the per-core
        # budget shrank: re-snap the areas against the actual budget.
        per_core = budget_area / float(n)
        while (center["a0"] + center["a1"] + center["a2"]) > per_core:
            # Shrink the largest area one grid step at a time.
            name = max(("a0", "a1", "a2"), key=lambda k: center[k])
            values = params[name].values
            idx = values.index(center[name])
            if idx == 0:
                break  # cannot shrink further; leave as-is
            center[name] = values[idx - 1]
        return center

    def explore(self, evaluator: Evaluator, *, radius: int = 0,
                simulated_params: "Sequence[str] | None" = None,
                batch_size: "int | None" = None) -> APSResult:
        """Steps 2-3: optimize, then simulate the adjacent region.

        Parameters
        ----------
        evaluator:
            The simulator (wrapped with budget accounting if not already).
        radius:
            Grid slack on the analytic parameters (0 = paper's pure APS).
        simulated_params:
            Parameters swept by simulation; defaults to every non-analytic
            parameter of the space.
        batch_size:
            Candidates per batched evaluator call (the narrowed region
            is simulated through the batch path).
        """
        budget = (evaluator if isinstance(evaluator, BudgetedEvaluator)
                  else BudgetedEvaluator(evaluator, method="aps"))
        batch_size = resolve_batch_size(batch_size)
        tracer = get_tracer()
        with tracer.span("dse.aps.analytic"):
            analytic = self.analytic_skeleton()
            center = self._feasible_center(analytic)
        if simulated_params is None:
            simulated_params = [name for name in self.space.names
                                if name not in self.ANALYTIC_PARAMS]
        candidates = self.space.neighborhood(
            center, free=simulated_params, radius=radius)
        start = budget.evaluations
        best_cost = float("inf")
        best_config: dict = {}
        with tracer.span("dse.aps.simulate", candidates=len(candidates),
                         radius=radius, batch_size=batch_size):
            for chunk in chunked(candidates, batch_size):
                costs = budget.evaluate_batch(chunk)
                i = int(np.argmin(costs))
                if costs[i] < best_cost:
                    best_cost = float(costs[i])
                    best_config = chunk[i]
        registry = get_registry()
        registry.gauge("dse.aps.candidates").set(len(candidates))
        registry.gauge("dse.aps.space_size").set(self.space.size)
        sims = budget.evaluations - start
        if sims:
            registry.gauge("dse.aps.narrowing_factor").set(
                self.space.size / sims)
        return APSResult(
            analytic=analytic,
            best_config=best_config,
            best_cost=best_cost,
            simulations=budget.evaluations - start,
            candidates=len(candidates),
            space_size=self.space.size,
        )
