"""ANN-based predictive DSE (the paper's Ipek-et-al. baseline, ref [2]).

A from-scratch NumPy multilayer perceptron is trained on simulated
samples of the design space; training proceeds in batches of fresh
simulations until the cross-validated prediction error reaches a target
(the paper matches ANN and APS at 5.96% error and reports ANN needing
613 simulations, 6.1x APS's 100).  The trained model then predicts the
whole space and proposes its argmin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dse.batch import chunked, resolve_batch_size
from repro.dse.evaluate import BudgetedEvaluator, Evaluator, is_feasible
from repro.dse.space import DesignSpace
from repro.errors import DesignSpaceError, InvalidParameterError
from repro.obs import get_registry, get_tracer

__all__ = ["MLPRegressor", "ANNPredictorSearch", "ANNSearchResult"]


class MLPRegressor:
    """Small fully connected regressor (tanh hidden layers, linear out).

    Trained with Adam on mean-squared error over log-costs.  Written
    against plain NumPy so the baseline is self-contained (no network
    access, no sklearn).
    """

    def __init__(self, n_inputs: int, hidden: tuple[int, ...] = (16, 16),
                 *, seed: int = 0, learning_rate: float = 1e-2) -> None:
        if n_inputs < 1:
            raise InvalidParameterError(f"n_inputs must be >= 1, got {n_inputs}")
        if not hidden or any(h < 1 for h in hidden):
            raise InvalidParameterError(f"invalid hidden sizes {hidden}")
        rng = np.random.default_rng(seed)
        sizes = (n_inputs, *hidden, 1)
        self.weights = [rng.normal(0.0, np.sqrt(2.0 / sizes[i]),
                                   size=(sizes[i], sizes[i + 1]))
                        for i in range(len(sizes) - 1)]
        self.biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        self.learning_rate = learning_rate
        self._adam_m = [np.zeros_like(w) for w in self.weights]
        self._adam_v = [np.zeros_like(w) for w in self.weights]
        self._adam_mb = [np.zeros_like(b) for b in self.biases]
        self._adam_vb = [np.zeros_like(b) for b in self.biases]
        self._adam_t = 0

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        acts = [x]
        h = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            h = z if i == len(self.weights) - 1 else np.tanh(z)
            acts.append(h)
        return h, acts

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted (log-)costs for feature rows ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out, _ = self._forward(x)
        return out[:, 0]

    def fit(self, x: np.ndarray, y: np.ndarray, *, epochs: int = 800,
            batch_size: int = 32, rng: "np.random.Generator | None" = None) -> float:
        """Train on ``(x, y)``; returns final training MSE."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise InvalidParameterError("x and y row counts differ")
        rng = rng if rng is not None else np.random.default_rng(0)
        n = x.shape[0]
        mse = float("inf")
        for _ in range(epochs):
            order = rng.permutation(n)
            for lo in range(0, n, batch_size):
                idx = order[lo:lo + batch_size]
                self._adam_step(x[idx], y[idx])
            pred = self.predict(x)
            mse = float(np.mean((pred - y) ** 2))
        return mse

    def _adam_step(self, xb: np.ndarray, yb: np.ndarray,
                   beta1: float = 0.9, beta2: float = 0.999,
                   eps: float = 1e-8) -> None:
        out, acts = self._forward(xb)
        m = xb.shape[0]
        delta = (out[:, 0] - yb)[:, None] * (2.0 / m)
        grads_w = []
        grads_b = []
        for i in reversed(range(len(self.weights))):
            a_prev = acts[i]
            grads_w.append(a_prev.T @ delta)
            grads_b.append(delta.sum(axis=0))
            if i > 0:
                delta = (delta @ self.weights[i].T) * (1.0 - acts[i] ** 2)
        grads_w.reverse()
        grads_b.reverse()
        self._adam_t += 1
        t = self._adam_t
        lr = self.learning_rate * (np.sqrt(1 - beta2 ** t) / (1 - beta1 ** t))
        for i in range(len(self.weights)):
            self._adam_m[i] = beta1 * self._adam_m[i] + (1 - beta1) * grads_w[i]
            self._adam_v[i] = beta2 * self._adam_v[i] + (1 - beta2) * grads_w[i] ** 2
            self.weights[i] -= lr * self._adam_m[i] / (np.sqrt(self._adam_v[i]) + eps)
            self._adam_mb[i] = beta1 * self._adam_mb[i] + (1 - beta1) * grads_b[i]
            self._adam_vb[i] = beta2 * self._adam_vb[i] + (1 - beta2) * grads_b[i] ** 2
            self.biases[i] -= lr * self._adam_mb[i] / (np.sqrt(self._adam_vb[i]) + eps)


@dataclass(frozen=True)
class ANNSearchResult:
    """Outcome of the ANN-driven search.

    Attributes
    ----------
    best_config / best_cost:
        The predicted-best configuration and its *simulated* cost.
    simulations:
        Total simulations consumed (training + validation + final check).
    achieved_error:
        Cross-validated relative prediction error at stop time.
    history:
        ``(simulations, cv_error)`` after each training round.
    """

    best_config: dict
    best_cost: float
    simulations: int
    achieved_error: float
    history: tuple[tuple[int, float], ...] = field(default_factory=tuple)


class ANNPredictorSearch:
    """Ipek-style train-until-accurate predictive search."""

    def __init__(self, space: DesignSpace, *, hidden: tuple[int, ...] = (16, 16),
                 batch: int = 50, max_rounds: int = 20, seed: int = 0,
                 epochs: int = 800) -> None:
        if batch < 2:
            raise DesignSpaceError(f"batch must be >= 2, got {batch}")
        if epochs < 1:
            raise DesignSpaceError(f"epochs must be >= 1, got {epochs}")
        self.space = space
        self.hidden = hidden
        self.batch = batch
        self.max_rounds = max_rounds
        self.seed = seed
        self.epochs = epochs

    def search(self, evaluator: Evaluator, *,
               target_error: float = 0.0596,
               predict_sample: int = 20000,
               batch_size: "int | None" = None) -> ANNSearchResult:
        """Train on growing samples until the CV error target is met.

        ``target_error`` defaults to the paper's matched 5.96%.
        ``predict_sample`` bounds the prediction pass over huge spaces.
        Each round's training samples are simulated through the batch
        path in ``batch_size`` chunks (design-rule rejects spend
        nothing).
        """
        budget = (evaluator if isinstance(evaluator, BudgetedEvaluator)
                  else BudgetedEvaluator(evaluator, method="ann"))
        batch_size = resolve_batch_size(batch_size)
        tracer = get_tracer()
        rng = np.random.default_rng(self.seed)
        train_x: list[np.ndarray] = []
        train_y: list[float] = []
        history: list[tuple[int, float]] = []
        cv_error = float("inf")
        for round_no in range(self.max_rounds):
            with tracer.span("dse.ann.round", round=round_no,
                             target_error=target_error) as round_span:
                feasible = [c for c in self.space.sample(self.batch, rng)
                            if is_feasible(budget, c)]
                for chunk in chunked(feasible, batch_size):
                    for config, cost in zip(chunk,
                                            budget.evaluate_batch(chunk)):
                        if not np.isfinite(cost):
                            continue
                        train_x.append(self.space.as_features(config))
                        train_y.append(np.log(cost))
                if len(train_y) < 4:
                    continue
                x = np.vstack(train_x)
                y = np.asarray(train_y)
                cv_error = self._cv_error(x, y, rng)
                round_span.set_attr(cv_error=cv_error,
                                    simulations=budget.evaluations)
            history.append((budget.evaluations, cv_error))
            if cv_error <= target_error:
                break
        registry = get_registry()
        registry.gauge("dse.ann.cv_error").set(cv_error)
        registry.gauge("dse.ann.rounds").set(len(history))
        # Final model on all data; simulate the top-k predictions and
        # keep the best feasible one (the model cannot know the area
        # feasibility boundary from feasible-only training data).
        model = MLPRegressor(len(self.space.names), self.hidden,
                             seed=self.seed)
        model.fit(np.vstack(train_x), np.asarray(train_y),
                  epochs=self.epochs, rng=rng)
        if self.space.size <= predict_sample:
            candidates = list(self.space)
        else:
            candidates = self.space.sample(predict_sample, rng)
        candidates = [c for c in candidates if is_feasible(budget, c)]
        feats = np.vstack([self.space.as_features(c) for c in candidates])
        pred = model.predict(feats)
        best_config: dict = {}
        best_cost = float("inf")
        top = [candidates[int(i)] for i in np.argsort(pred)[:10]]
        for config, cost in zip(top, budget.evaluate_batch(top)):
            if cost < best_cost:
                best_cost = float(cost)
                best_config = config
        return ANNSearchResult(
            best_config=best_config,
            best_cost=best_cost,
            simulations=budget.evaluations,
            achieved_error=cv_error,
            history=tuple(history),
        )

    def _cv_error(self, x: np.ndarray, y: np.ndarray,
                  rng: np.random.Generator, folds: int = 4) -> float:
        """K-fold relative prediction error (on real costs, not logs)."""
        n = x.shape[0]
        idx = rng.permutation(n)
        errors: list[float] = []
        for f in range(folds):
            test = idx[f::folds]
            train = np.setdiff1d(idx, test)
            if train.size < 2 or test.size < 1:
                continue
            model = MLPRegressor(x.shape[1], self.hidden, seed=self.seed + f)
            model.fit(x[train], y[train], epochs=self.epochs, rng=rng)
            pred = np.exp(model.predict(x[test]))
            actual = np.exp(y[test])
            errors.extend(np.abs(pred - actual) / actual)
        return float(np.mean(errors)) if errors else float("inf")
