"""Sharded sweep fabric: ownership-partitioned scheduling + work-stealing.

:class:`~repro.dse.batch.ParallelEvaluator` carves a batch into
fixed-size ordered chunks, so one slow chunk serializes the tail of a
sweep — the exact straggler pathology the paper's own
concurrency-over-capacity lens (C-AMAT) warns about in memory systems.
:class:`FabricEvaluator` replaces the fixed carving with *ownership plus
stealing*:

1. **Deterministic sharding** — every configuration hashes to one of
   the :data:`~repro.sim.cache_store.SHARD_COUNT` shards
   (:func:`config_shard`).  When the inner evaluator exposes
   ``cache_key_for`` (the simulator path) the shard is the *store's own*
   hash prefix, so fabric ownership coincides with disk-shard ownership:
   each worker slot owns a contiguous shard range
   (:func:`owner_of_shard`) and is the only writer of those shard
   directories — single-writer by construction, no cross-process locks.
2. **Work-stealing** — each slot drains its own backlog in input order;
   an idle slot steals the *tail half* of the largest remaining backlog
   (``dse.fabric.steals`` counter, ``dse.fabric.steal`` trace events),
   so a straggler shard is finished by everyone instead of serializing
   the sweep.
3. **Ordered reassembly** — results land by original batch index, so
   costs are bit-identical for any steal schedule, worker count, or
   crash/recovery sequence (every evaluator is a pure function of the
   configuration).  ``tests/dse/test_fabric.py`` and
   ``scripts/fabric_equivalence_check.py`` prove workers=1 ≡ workers=N ≡
   forced-steal ≡ kill-and-resume.

Tiered-cache integration: each slot receives the inner evaluator with
its store re-scoped (:meth:`~repro.sim.cache_store.SimCacheStore.scoped`)
to ``owned_shards`` of that slot plus write-behind buffering, and the
worker task flushes the buffer before returning.  Results a thief
computed for shards it does not own are persisted by the *parent* after
reassembly (``dse.fabric.reconciled``) — the parent is owner of last
resort, still a single writer per entry at a time.

Fault tolerance mirrors the pool evaluator: a lost unit (worker crash,
transient error) is re-queued at the front of its owner's backlog on a
rebuilt pool up to ``retry_policy.max_attempts`` attempts, then degrades
to exact serial in-parent evaluation — all through the existing
``resilience.*`` counters.
"""

from __future__ import annotations

import copy
import hashlib
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from concurrent.futures import ProcessPoolExecutor, wait
from typing import Callable, Sequence

import numpy as np

from repro.dse.evaluate import batch_evaluate, canonical_key, is_feasible
from repro.errors import (
    DesignSpaceError,
    FatalError,
    ReproError,
    TransientError,
)
from repro.obs import get_registry, get_tracer
from repro.resilience.policy import RetryPolicy, retry_call
from repro.sim.cache_store import (
    SHARD_COUNT,
    SHARD_PREFIX_LEN,
    SimCacheStore,
    shard_of_key,
)

__all__ = ["FabricEvaluator", "config_shard", "owner_of_shard",
           "owned_shards_of"]


def config_shard(evaluator, config: dict) -> int:
    """Deterministic shard index of a configuration under an evaluator.

    Prefers the evaluator's own content address (``cache_key_for``, the
    simulator path) so fabric ownership and disk-shard ownership agree.
    Evaluators without the hook fall back to hashing the canonical
    configuration key — just as deterministic, merely unrelated to any
    on-disk layout.
    """
    hook = getattr(evaluator, "cache_key_for", None)
    if hook is not None:
        return shard_of_key(hook(config))
    payload = repr(canonical_key(config)).encode()
    return int(hashlib.sha256(payload).hexdigest()[:SHARD_PREFIX_LEN], 16)


def owner_of_shard(shard: int, workers: int) -> int:
    """The worker slot owning a shard: contiguous ranges, load-balanced.

    Slot ``w`` owns shards ``[ceil(w*S/W), ceil((w+1)*S/W))`` — every
    shard has exactly one owner for any worker count.
    """
    return shard * workers // SHARD_COUNT


def owned_shards_of(slot: int, workers: int) -> "frozenset[int]":
    """The shard range a worker slot owns (inverse of
    :func:`owner_of_shard`)."""
    return frozenset(s for s in range(SHARD_COUNT)
                     if owner_of_shard(s, workers) == slot)


def _evaluate_unit(evaluator,
                   configs: list) -> "tuple[list[float], float, float]":
    """Worker-side unit of work: scalar-evaluate in order, then flush.

    Module-level so the pool can pickle it.  The trailing flush matters:
    slot evaluators carry a write-behind store whose buffer would die
    with the task otherwise.  Returns ``(costs, t_start, exec_s)`` like
    :func:`repro.dse.batch._evaluate_chunk` so the parent can decompose
    latency into the same ``dse.chunk.*`` spans.
    """
    t_start = time.perf_counter()
    costs = [float(evaluator.evaluate(c)) for c in configs]
    store = getattr(evaluator, "cache", None)
    flush = getattr(store, "flush", None)
    if flush is not None:
        flush()
    return costs, t_start, time.perf_counter() - t_start


class FabricEvaluator:
    """Shard-owned, work-stealing process-pool evaluator.

    Parameters
    ----------
    inner:
        The wrapped evaluator (pickled with each unit; must be picklable
        when ``workers > 1``).
    workers:
        Worker-slot count; ``None`` resolves against
        :func:`~repro.dse.batch.get_batch_defaults`.  With one worker
        batches run inline (no pool, no shards — still bit-identical).
    steal:
        Enable work-stealing (default).  Disabled, each slot only ever
        drains its own shard range — stragglers serialize again, which
        is exactly the degraded leg the equivalence suite compares.
    unit_size:
        Configurations per pool task.  ``None`` picks
        ``ceil(len(batch) / (16 * workers))`` — small units keep steals
        meaningful.  ``1`` forces maximal stealing (the differential
        suite's adversarial leg).
    write_behind:
        Write-behind buffer size handed to each slot's scoped store
        (``0`` restores write-through in the workers).
    retry_policy, sleep:
        Lost-unit resubmission policy and injectable backoff hook, as on
        :class:`~repro.dse.batch.ParallelEvaluator`.
    """

    def __init__(self, inner, *, workers: "int | None" = None,
                 steal: bool = True, unit_size: "int | None" = None,
                 write_behind: int = 64,
                 retry_policy: "RetryPolicy | None" = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        # Imported here: batch.py's factory imports this module lazily,
        # and a top-level import either way would be circular-prone.
        from repro.dse.batch import resolve_workers

        self.inner = inner
        self.workers = resolve_workers(workers)
        if unit_size is not None and unit_size < 1:
            raise DesignSpaceError(
                f"unit size must be >= 1, got {unit_size}")
        if write_behind < 0:
            raise DesignSpaceError(
                f"write_behind must be >= 0, got {write_behind}")
        self.steal = bool(steal)
        self.unit_size = unit_size
        self.write_behind = int(write_behind)
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self._sleep = sleep
        self._pool: "ProcessPoolExecutor | None" = None
        self._slot_evaluators: dict = {}
        registry = get_registry()
        self._ctr_steals = registry.counter("dse.fabric.steals")
        self._ctr_units = registry.counter("dse.fabric.units")
        self._ctr_reconciled = registry.counter("dse.fabric.reconciled")
        self._ctr_crashes = registry.counter("resilience.worker_crashes")
        self._ctr_rebuilds = registry.counter("resilience.pool_rebuilds")
        self._ctr_serial = registry.counter("resilience.serial_fallbacks")
        self._ctr_retries = registry.counter("resilience.retries")

    # ---- evaluator protocol ----------------------------------------------

    def evaluate(self, config: dict) -> float:
        """Scalar pass-through (no pool round-trip for one point)."""
        return retry_call(lambda: float(self.inner.evaluate(config)),
                          policy=self.retry_policy, sleep=self._sleep,
                          what="scalar evaluation")

    def is_feasible(self, config: dict) -> bool:
        """Delegates to the wrapped evaluator's design-rule check."""
        return is_feasible(self.inner, config)

    def evaluate_batch(self, configs: Sequence[dict]) -> np.ndarray:
        """Costs of ``configs`` in input order, fabric-scheduled."""
        configs = list(configs)
        if not configs:
            return np.empty(0, dtype=float)
        if self.workers == 1:
            return retry_call(lambda: batch_evaluate(self.inner, configs),
                              policy=self.retry_policy, sleep=self._sleep,
                              what="inline fabric batch")
        shards = [config_shard(self.inner, c) for c in configs]
        return self._run_fabric(configs, shards)

    # ---- scheduling core --------------------------------------------------

    def _run_fabric(self, configs: list, shards: "list[int]") -> np.ndarray:
        policy = self.retry_policy
        tracer = get_tracer()
        n = len(configs)
        out = np.empty(n, dtype=float)
        unit = self.unit_size
        if unit is None:
            unit = max(1, -(-n // (16 * self.workers)))
        backlogs: "list[deque[int]]" = [deque() for _ in range(self.workers)]
        for i, shard in enumerate(shards):
            backlogs[owner_of_shard(shard, self.workers)].append(i)
        attempts = [0] * n
        serial_queue: "list[int]" = []
        executed: "list[tuple[int, list[int]]]" = []
        free = set(range(self.workers))
        inflight: dict = {}
        t_done: dict = {}
        round_no = 0
        pool = self._ensure_pool()
        while True:
            for slot in sorted(free):
                indices = self._next_unit(slot, backlogs, unit, tracer)
                if not indices:
                    continue
                t_submit = time.perf_counter()
                fut = pool.submit(_evaluate_unit, self._slot_evaluator(slot),
                                  [configs[i] for i in indices])
                fut.add_done_callback(
                    lambda f: t_done.setdefault(f, time.perf_counter()))
                inflight[fut] = (slot, indices, t_submit)
                free.discard(slot)
                self._ctr_units.inc()
            if not inflight:
                break
            done, _pending = wait(list(inflight),
                                  return_when=FIRST_COMPLETED)
            lost: "list[list[int]]" = []
            need_rebuild = False
            for fut in done:
                slot, indices, t_submit = inflight.pop(fut)
                free.add(slot)
                try:
                    costs, t_start, exec_s = fut.result()
                except BrokenExecutor:
                    self._ctr_crashes.inc()
                    tracer.event("resilience.chunk_lost", chunk=slot,
                                 reason="crash")
                    lost.append(indices)
                    need_rebuild = True
                    continue
                except TransientError:
                    tracer.event("resilience.chunk_lost", chunk=slot,
                                 reason="transient")
                    lost.append(indices)
                    continue
                except FatalError:
                    raise
                for i, cost in zip(indices, costs):
                    out[i] = cost
                executed.append((slot, indices))
                self._record_unit_timing(slot, len(indices), t_submit,
                                         t_done.get(fut), t_start, exec_s)
            if need_rebuild:
                self._teardown_pool(kill=True)
                self._ctr_rebuilds.inc()
                pool = self._ensure_pool()
            if lost:
                round_no += 1
                requeued = 0
                for indices in lost:
                    for i in indices:
                        attempts[i] += 1
                    retry_idx = [i for i in indices
                                 if attempts[i] < policy.max_attempts]
                    serial_queue.extend(
                        i for i in indices
                        if attempts[i] >= policy.max_attempts)
                    # Lost work goes back to the FRONT of its owner's
                    # backlog (reversed extendleft preserves order), so
                    # recovery never reorders evaluation within a shard.
                    for i in reversed(retry_idx):
                        backlogs[owner_of_shard(
                            shards[i], self.workers)].appendleft(i)
                    requeued += len(retry_idx)
                if requeued:
                    self._ctr_retries.inc()
                    with tracer.span("resilience.backoff", round=round_no,
                                     chunks=requeued):
                        self._sleep(policy.delay(round_no))
        if serial_queue:
            order = sorted(set(serial_queue))
            self._ctr_serial.inc()
            tracer.event("resilience.serial_fallback", chunk=-1,
                         attempts=policy.max_attempts)
            costs = retry_call(
                lambda: batch_evaluate(self.inner,
                                       [configs[i] for i in order]),
                policy=policy, sleep=self._sleep,
                what="fabric serial fallback")
            for i, cost in zip(order, costs):
                out[i] = cost
        self._reconcile(configs, shards, executed, out)
        return out

    def _next_unit(self, slot: int, backlogs: "list[deque[int]]",
                   unit: int, tracer) -> "list[int]":
        """Pop the next unit for a slot, stealing first when idle.

        Stealing takes the *tail* half of the largest backlog (ties →
        lowest victim slot), so the victim keeps draining its head in
        input order while the thief works the far end.
        """
        own = backlogs[slot]
        if not own and self.steal:
            victim = -1
            largest = 0
            for v, backlog in enumerate(backlogs):
                if v != slot and len(backlog) > largest:
                    largest = len(backlog)
                    victim = v
            if victim >= 0:
                move = max(1, largest // 2)
                stolen = [backlogs[victim].pop() for _ in range(move)]
                stolen.reverse()
                own.extend(stolen)
                self._ctr_steals.inc()
                tracer.event("dse.fabric.steal", thief=slot, victim=victim,
                             moved=move)
        take = min(unit, len(own))
        return [own.popleft() for _ in range(take)]

    def _slot_evaluator(self, slot: int):
        """The inner evaluator as shipped to one worker slot.

        When the inner evaluator carries a
        :class:`~repro.sim.cache_store.SimCacheStore`, the slot gets a
        shallow copy whose store is scoped to the slot's owned shards
        with write-behind buffering — the tiered cache's single-writer
        discipline.  Other evaluators ship as-is.
        """
        cached = self._slot_evaluators.get(slot)
        if cached is not None:
            return cached
        evaluator = self.inner
        store = getattr(evaluator, "cache", None)
        if isinstance(store, SimCacheStore):
            evaluator = copy.copy(evaluator)
            evaluator.cache = store.scoped(
                owned_shards=owned_shards_of(slot, self.workers),
                write_behind=self.write_behind)
            # tag the view with its slot so a sanitizer finding
            # (C2BOUND_SANITIZE=1) names the offending worker
            evaluator.cache.sanitize_slot = slot
        self._slot_evaluators[slot] = evaluator
        return evaluator

    def _reconcile(self, configs: list, shards: "list[int]",
                   executed: "list[tuple[int, list[int]]]",
                   out: np.ndarray) -> None:
        """Persist stolen-work results the executing slot could not.

        A thief's scoped store refuses disk writes outside its owned
        shards (``sim.cache.shard_denied``), so the cost came back to
        the parent unpersisted.  The parent re-puts it here — after
        reassembly, off every worker's critical path — as the owner of
        last resort (atomic + idempotent, so a concurrent future owner
        write is harmless).
        """
        store = getattr(self.inner, "cache", None)
        key_for = getattr(self.inner, "cache_key_for", None)
        if not isinstance(store, SimCacheStore) or key_for is None:
            return
        provenance_hook = getattr(self.inner, "cache_provenance", None)
        provenance = provenance_hook() if provenance_hook is not None else {}
        reconciled = 0
        for slot, indices in executed:
            owned = owned_shards_of(slot, self.workers)
            for i in indices:
                if shards[i] not in owned and np.isfinite(out[i]):
                    store.put(key_for(configs[i]), float(out[i]),
                              **provenance)
                    reconciled += 1
        if reconciled:
            self._ctr_reconciled.inc(reconciled)

    def _record_unit_timing(self, slot: int, size: int, t_submit: float,
                            t_done: "float | None", t_start: float,
                            exec_s: float) -> None:
        """Same latency decomposition as the pool evaluator's chunks —
        the profiler buckets (queue_wait / simulation / ipc) apply to
        fabric units unchanged."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        queue_wait = max(0.0, t_start - t_submit)
        exec_s = max(0.0, exec_s)
        tracer.record_span("dse.chunk.queue_wait", queue_wait,
                           chunk=slot, size=size)
        tracer.record_span("dse.chunk.execute", exec_s,
                           chunk=slot, size=size)
        if t_done is not None:
            ipc = max(0.0, (t_done - t_submit) - queue_wait - exec_s)
            tracer.record_span("dse.chunk.ipc", ipc,
                               chunk=slot, size=size)

    # ---- pool lifecycle ---------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _teardown_pool(self, *, kill: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            procs = getattr(pool, "_processes", None) or {}
            for proc in list(procs.values()):
                if proc.is_alive():
                    proc.terminate()
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except (OSError, RuntimeError):
            pass

    def close(self) -> None:
        """Shut the pool down and flush the parent-side store buffer."""
        self._teardown_pool()
        store = getattr(self.inner, "cache", None)
        flush = getattr(store, "flush", None)
        if flush is not None:
            flush()

    def __enter__(self) -> "FabricEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-time best effort
        try:
            self.close()
        except (ReproError, OSError, RuntimeError):
            pass
