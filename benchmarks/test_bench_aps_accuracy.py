"""Section IV benchmark: APS accuracy vs the full design-space sweep.

Paper: the APS pick is within 5.96% of the full 10^6-point sweep's
optimum (error attributed to Pollack's rule being empirical).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.aps_accuracy import run_aps_accuracy


def test_aps_accuracy_vs_full_sweep(benchmark, results_dir):
    table, accuracy = run_once(benchmark, run_aps_accuracy)
    print("\n" + table.render())
    table.save_csv(results_dir / "aps_accuracy.csv")
    # Full-size surrogate space: APS error in the paper's single-digit
    # to low-tens percent band, with 10^4x fewer evaluations.
    assert accuracy.surrogate_error < 0.25
    assert accuracy.surrogate_sims == 100
    assert accuracy.surrogate_space == 10 ** 6
    # Real-simulator reduced space: APS stays competitive while
    # simulating only the microarchitecture grid.
    assert accuracy.simulator_sims < accuracy.simulator_space
    assert accuracy.simulator_error < 0.6
