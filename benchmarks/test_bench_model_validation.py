"""Validation benchmark: analytic model vs cycle-level simulation.

The paper's Section IV exists "to verify [the model's] correctness and
effectiveness"; operationally, APS is sound iff the analytic objective
*ranks* designs like the simulator does.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.validation import run_model_validation


def test_model_ranks_like_simulator(benchmark, results_dir):
    table, rho = run_once(benchmark, run_model_validation)
    print("\n" + table.render())
    print(f"Spearman rank correlation: {rho:.3f}")
    table.save_csv(results_dir / "model_validation.csv")
    # Strong rank agreement across core counts and cache splits.
    assert rho > 0.7
    # Directions agree: both costs fall with more cores at fixed split.
    model = table.column("model_cpi")
    sim = table.column("sim_cpi")
    assert model[0] > model[3] > model[6]
    assert sim[0] > sim[3] > sim[6]
