"""Perf-smoke: vectorized address-stream generation must stay vectorized.

The Table I workload generators (:class:`~repro.workloads.spmv.BandSpMV`,
:class:`~repro.workloads.matmul.TiledMatMul`) build their streams in
single NumPy broadcasts.  This bench regenerates both streams through
deliberately naive per-access Python loops — the shape the code must
never regress back into — and asserts the shipped generators are
bit-identical and at least 5× faster (typically 30-100×).

Wall times and speedups fold into the harness record,
``results/BENCH_test_workload_gen_speedup.json``.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once, update_bench_record

from repro.workloads.matmul import TiledMatMul
from repro.workloads.spmv import BandSpMV

MIN_SPEEDUP = 5.0

SPMV_N = 4096
SPMV_B = 8
TMM_N = 48
TMM_TILE = 8


def _naive_spmv_stream(wl: BandSpMV) -> np.ndarray:
    """Per-access Python-loop twin of ``BandSpMV.address_stream``."""
    n, b, eb = wl.n, wl.b, wl.element_bytes
    width = 2 * b + 1
    base_a = 0
    base_x = n * width * eb
    base_y = base_x + n * eb
    out = []
    for i in range(n):
        for lane in range(width):
            col = min(max(i + lane - b, 0), n - 1)
            out.append(base_a + (i * width + lane) * eb)
            out.append(base_x + col * eb)
        out.append(base_y + i * eb)
    return np.array(out, dtype=np.int64)


def _naive_tmm_stream(wl: TiledMatMul) -> np.ndarray:
    """Per-access Python-loop twin of ``TiledMatMul.address_stream``."""
    p = wl.params
    n, t, eb = p.n, p.tile, p.element_bytes
    base_a = 0
    base_b = n * n * eb
    base_c = 2 * n * n * eb
    nt = n // t
    out = []
    for ii in range(nt):
        for jj in range(nt):
            for kk in range(nt):
                for i_in in range(t):
                    for j_in in range(t):
                        for k_in in range(t):
                            i = ii * t + i_in
                            j = jj * t + j_in
                            k = kk * t + k_in
                            out.append(base_a + (i * n + k) * eb)
                            out.append(base_b + (k * n + j) * eb)
                            out.append(base_c + (i * n + j) * eb)
    return np.array(out, dtype=np.int64)


def _vectorized_streams(spmv: BandSpMV,
                        tmm: TiledMatMul) -> "tuple[np.ndarray, np.ndarray]":
    rng = np.random.default_rng(0)      # streams are rng-independent
    return spmv.address_stream(rng), tmm.address_stream(rng)


def test_workload_gen_speedup(benchmark, results_dir):
    spmv = BandSpMV(n=SPMV_N, half_bandwidth=SPMV_B)
    tmm = TiledMatMul(n=TMM_N, tile=TMM_TILE)

    naive_s = vec_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        naive_spmv = _naive_spmv_stream(spmv)
        naive_tmm = _naive_tmm_stream(tmm)
        naive_s = min(naive_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        vec_spmv, vec_tmm = _vectorized_streams(spmv, tmm)
        vec_s = min(vec_s, time.perf_counter() - t0)
        if naive_s / vec_s >= MIN_SPEEDUP:
            break

    # One harness pass for the canonical record.
    run_once(benchmark, _vectorized_streams, spmv, tmm)

    # Same addresses, same order, same dtype — vectorization changes
    # wall time only (the golden simulation digests ride on this).
    assert vec_spmv.dtype == naive_spmv.dtype
    assert vec_tmm.dtype == naive_tmm.dtype
    assert np.array_equal(vec_spmv, naive_spmv)
    assert np.array_equal(vec_tmm, naive_tmm)

    speedup = naive_s / vec_s
    path = update_bench_record(
        benchmark.name,
        spmv_entries=int(vec_spmv.size),
        tmm_entries=int(vec_tmm.size),
        naive_s=naive_s,
        vectorized_s=vec_s,
        speedup=speedup,
        min_speedup=MIN_SPEEDUP,
    )
    print(f"\nnaive {naive_s:.3f}s  vectorized {vec_s:.4f}s  "
          f"speedup {speedup:.1f}x  -> {path}")

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized stream generation only {speedup:.1f}x faster than "
        f"per-access loops (floor {MIN_SPEEDUP}x); see {path}")
