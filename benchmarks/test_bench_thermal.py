"""Benchmark: thermally constrained design (paper §VII future work)."""

from __future__ import annotations

from conftest import run_once

from repro.core import ApplicationProfile, MachineParameters
from repro.core.thermal import ThermallyConstrainedOptimizer
from repro.io.results import ResultTable
from repro.laws.gfunction import PowerLawG


def sweep_thermal_limits() -> ResultTable:
    machine = MachineParameters(total_area=200.0, shared_area=20.0)
    app = ApplicationProfile(f_seq=0.05, f_mem=0.3, concurrency=2.0,
                             g=PowerLawG(0.5))
    table = ResultTable(
        ["t_max", "N*", "A0", "hottest_tile", "execution_time"],
        title="Thermally constrained C2-Bound designs")
    for t_max in (1e6, 95.0, 80.0, 70.0):
        opt = ThermallyConstrainedOptimizer(app, machine, t_max=t_max)
        try:
            point, rep = opt.optimize(n_max=256)
        except Exception:
            continue
        table.add_row(t_max, point.n, point.config.a0,
                      rep.hottest_tile, point.execution_time)
    return table


def test_thermal_constrained_design(benchmark, results_dir):
    table = run_once(benchmark, sweep_thermal_limits)
    print("\n" + table.render())
    table.save_csv(results_dir / "extension_thermal.csv")
    assert len(table) >= 2
    temps = table.column("hottest_tile")
    times = table.column("execution_time")
    ns = table.column("N*")
    a0s = table.column("A0")
    # Tighter limits force cooler designs at a performance cost, by
    # shrinking the big hot cores (more, smaller cores).
    assert temps[-1] <= temps[0]
    assert times[-1] >= times[0]
    assert a0s[-1] <= a0s[0]
    assert ns[-1] >= ns[0]
