"""Fig. 10 benchmark: throughput W/T vs N (f_mem = 0.3)."""

from __future__ import annotations

import numpy as np

from repro.experiments.figs08_11_scaling import run_scaling_figure


def test_fig10_throughput(benchmark, results_dir):
    table = benchmark(run_scaling_figure, f_mem=0.3, quantity="throughput")
    print("\n" + table.render())
    table.save_csv(results_dir / "fig10_WT_ratio_fmem03.csv")
    ns = np.array(table.column("N"), dtype=float)
    wt1 = np.array(table.column("W/T(C=1)"))
    wt4 = np.array(table.column("W/T(C=4)"))
    wt8 = np.array(table.column("W/T(C=8)"))
    # Higher memory concurrency -> higher throughput everywhere.
    assert np.all(wt8 > wt4) and np.all(wt4 > wt1)
    # C=1 saturates past ~100 cores: the log-log slope beyond N=100
    # collapses relative to the early slope (paper: "about one hundred
    # cores are enough to achieve the best throughput").
    early = (ns >= 1) & (ns <= 100)
    late = ns >= 100
    slope_early = np.polyfit(np.log(ns[early]), np.log(wt1[early]), 1)[0]
    slope_late = np.polyfit(np.log(ns[late]), np.log(wt1[late]), 1)[0]
    assert slope_late < 0.55 * slope_early
