"""Ablation: prefetching as a memory-concurrency mechanism.

Paper Section II-A: "out-of-order execution, multi-issue pipeline,
multi-threading ... can all increase C_H and C_M" — prefetch/runahead
structures likewise.  This benchmark measures C-AMAT and the
concurrency ratio C with the L1 prefetcher off/on and confirms that the
hardware mechanism moves exactly the model parameter C2-Bound says it
should.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from conftest import run_once

from repro.io.results import ResultTable
from repro.sim import CMPSimulator, SimulatedChip


def sweep_prefetchers() -> ResultTable:
    addrs = (np.arange(2500) * 64 + (1 << 22)).astype(np.int64)
    gaps = np.full(addrs.size, 400, dtype=np.int64)
    table = ResultTable(
        ["prefetcher", "miss_rate", "C-AMAT", "C", "useful_prefetches"],
        title="Prefetching as a concurrency mechanism")
    for pf in ("none", "nextline", "stride"):
        chip = SimulatedChip(n_cores=1)
        chip = replace(chip, l1=replace(chip.l1, prefetch=pf,
                                        prefetch_degree=4))
        res = CMPSimulator(chip).run([(addrs.copy(), gaps.copy())])
        stats = res.core_stats(0)
        table.add_row(pf, stats.miss_rate, stats.camat, stats.concurrency,
                      res.cores[0].prefetches_useful)
    return table


def test_prefetch_concurrency_ablation(benchmark, results_dir):
    table = run_once(benchmark, sweep_prefetchers)
    print("\n" + table.render())
    table.save_csv(results_dir / "ablation_prefetch.csv")
    camat = dict(zip(table.column("prefetcher"), table.column("C-AMAT")))
    # Prefetching lowers C-AMAT on a streaming workload; the stride
    # prefetcher (which runs ahead of the stream) dominates next-line.
    assert camat["nextline"] < camat["none"]
    assert camat["stride"] <= camat["nextline"]
