"""Extension benchmarks: asymmetric CMP and energy-aware design.

Paper Section VII names both as the model's natural extensions ("The
extension of C2-Bound to asymmetric CMP DSE is straightforward";
"energy consumption and temperature can be considered for
multi-objective exploration").  These benches regenerate the comparison
a follow-up paper would lead with.
"""

from __future__ import annotations

from conftest import run_once

from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.core.asymmetric import AsymmetricOptimizer
from repro.core.energy import EnergyAwareOptimizer
from repro.io.results import ResultTable
from repro.laws.gfunction import PowerLawG


def sweep_asymmetric() -> ResultTable:
    machine = MachineParameters(total_area=200.0, shared_area=20.0)
    table = ResultTable(
        ["f_seq", "sym_T", "asym_T", "asym_speedup", "big_core_area",
         "n_small"],
        title="Symmetric vs asymmetric CMP across sequential fractions")
    for f_seq in (0.05, 0.2, 0.4):
        app = ApplicationProfile(f_seq=f_seq, f_mem=0.3, concurrency=2.0,
                                 g=PowerLawG(0.0))
        sym = C2BoundOptimizer(app, machine).optimize(n_max=128).best
        asym = AsymmetricOptimizer(app, machine).optimize(n_max=128)
        table.add_row(f_seq, sym.execution_time, asym.execution_time,
                      sym.execution_time / asym.execution_time,
                      asym.big.per_core_area, asym.n_small)
    return table


def sweep_energy() -> ResultTable:
    machine = MachineParameters()
    app = ApplicationProfile(f_seq=0.05, f_mem=0.35, concurrency=4.0,
                             g=PowerLawG(0.5))
    opt = EnergyAwareOptimizer(app, machine)
    table = ResultTable(
        ["time_weight", "N*", "time", "energy"],
        title="Energy/performance trade-off (E * T^w optima)")
    for w in (0.0, 1.0, 2.0):
        point, report = opt.optimize(time_weight=w, n_max=256)
        table.add_row(w, point.n, report.execution_time,
                      report.total_energy)
    return table


def test_asymmetric_extension(benchmark, results_dir):
    table = run_once(benchmark, sweep_asymmetric)
    print("\n" + table.render())
    table.save_csv(results_dir / "extension_asymmetric.csv")
    speedups = table.column("asym_speedup")
    big_areas = table.column("big_core_area")
    # The asymmetric design never loses (it can always degenerate to a
    # symmetric one), and the silicon it devotes to the big core grows
    # with the sequential fraction — the Hill & Marty intuition with
    # the C2-Bound memory terms included.
    assert all(s >= 0.999 for s in speedups)
    assert big_areas[-1] >= big_areas[0]


def test_energy_extension(benchmark, results_dir):
    table = run_once(benchmark, sweep_energy)
    print("\n" + table.render())
    table.save_csv(results_dir / "extension_energy.csv")
    times = table.column("time")
    energies = table.column("energy")
    # Raising the time weight must not lengthen execution, and the
    # pure-energy point must be the cheapest in energy.
    assert times[-1] <= times[0] * (1 + 1e-9)
    assert energies[0] == min(energies)
