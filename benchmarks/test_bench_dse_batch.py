"""Perf-smoke: the batched brute sweep must beat the scalar loop ≥5×.

The surrogate sweep over a ~10⁴-point fluidanimate-like space (5 values
per parameter → 5⁶ = 15,625 points) is run twice: the pre-batch-engine
sequential path (per-point ``is_feasible`` + scalar ``evaluate``) and
the batched ``brute_force_search`` path.  Both must agree exactly on
the optimum and the simulation budget — the determinism contract of
``docs/DSE_PERFORMANCE.md`` — and the batched path must be at least 5×
faster (typically 10-100×; the 5× floor absorbs CI jitter).

Wall times and the speedup fold into the harness record,
``results/BENCH_test_dse_batch_speedup.json``.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once, update_bench_record

from repro.dse import BudgetedEvaluator, SurrogateEvaluator, is_feasible
from repro.experiments.fig12_aps import fluidanimate_profile, fluidanimate_space

MIN_SPEEDUP = 5.0


def _sequential_sweep(space, surrogate):
    """The pre-batch-engine brute force: one scalar call per point."""
    budget = BudgetedEvaluator(surrogate)
    best_cost = float("inf")
    best_config: dict = {}
    for config in space:
        if not is_feasible(budget, config):
            continue
        cost = budget.evaluate(config)
        if cost < best_cost:
            best_cost = cost
            best_config = config
    return best_config, best_cost, budget.evaluations


def test_dse_batch_speedup(benchmark, results_dir):
    from repro.dse import brute_force_search

    app, machine = fluidanimate_profile()
    space = fluidanimate_space(5)          # 5^6 = 15,625 points
    assert space.size == 15_625
    surrogate = SurrogateEvaluator(app, machine)

    t0 = time.perf_counter()
    seq_config, seq_cost, seq_evals = _sequential_sweep(space, surrogate)
    sequential_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = run_once(benchmark, brute_force_search, space,
                       BudgetedEvaluator(surrogate))
    batched_s = time.perf_counter() - t0

    # Same answer, same budget — batching changes wall time only.
    assert batched.best_config == seq_config
    assert batched.best_cost == seq_cost
    assert batched.evaluations == seq_evals
    assert np.isfinite(batched.best_cost)

    speedup = sequential_s / batched_s
    path = update_bench_record(
        benchmark.name,
        space_size=space.size,
        evaluations=batched.evaluations,
        skipped_infeasible=batched.skipped_infeasible,
        sequential_s=sequential_s,
        batched_s=batched_s,
        speedup=speedup,
        min_speedup=MIN_SPEEDUP,
    )
    print(f"\nsequential {sequential_s:.3f}s  batched {batched_s:.3f}s  "
          f"speedup {speedup:.1f}x  -> {path}")

    assert speedup >= MIN_SPEEDUP, (
        f"batched sweep only {speedup:.1f}x faster than sequential "
        f"(floor {MIN_SPEEDUP}x); see {path}")
