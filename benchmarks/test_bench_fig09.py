"""Fig. 9 benchmark: W and T vs N (g = N^{3/2}, f_mem = 0.9)."""

from __future__ import annotations

import numpy as np

from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.experiments.figs08_11_scaling import run_scaling_figure


def test_fig09_memory_bounded_scaling(benchmark, results_dir):
    table = benchmark(run_scaling_figure, f_mem=0.9, quantity="WT")
    print("\n" + table.render())
    table.save_csv(results_dir / "fig09_WT_fmem09.csv")
    t1 = np.array(table.column("T(C=1)"))
    t4 = np.array(table.column("T(C=4)"))
    t8 = np.array(table.column("T(C=8)"))
    assert np.all(t8 < t4) and np.all(t4 < t1)
    # Cross-figure claim: execution time increases with f_mem
    # (compare un-normalized absolute times at N = 200).
    m = MachineParameters()
    t_low = C2BoundOptimizer(ApplicationProfile(
        f_seq=0.02, f_mem=0.3), m).evaluate(200).execution_time
    t_high = C2BoundOptimizer(ApplicationProfile(
        f_seq=0.02, f_mem=0.9), m).evaluate(200).execution_time
    assert t_high > t_low
