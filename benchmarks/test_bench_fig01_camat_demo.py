"""Fig. 1 benchmark: the C-AMAT worked example (exact reproduction)."""

from __future__ import annotations

from repro.experiments.fig01_camat_demo import run_fig1


def test_fig01_camat_demo(benchmark, results_dir):
    table = benchmark(run_fig1)
    print("\n" + table.render())
    table.save_csv(results_dir / "fig01_camat_demo.csv")
    # Every parameter must match the paper exactly.
    assert all(table.column("match"))
