"""Fig. 12 benchmark: simulations needed by each DSE method.

Paper numbers (fluidanimate, 10^6-point space): full sweep 10^6,
ANN 613, APS 100 — APS uses 16.3% of ANN's simulations at matched
accuracy and narrows the space by four orders of magnitude.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig12_aps import run_fig12


def test_fig12_simulation_counts(benchmark, results_dir):
    table, outcome = run_once(benchmark, run_fig12)
    print("\n" + table.render())
    print(f"APS/ANN simulation ratio: {outcome.aps_vs_ann_ratio:.3f} "
          f"(paper: 0.163)")
    table.save_csv(results_dir / "fig12_simulation_counts.csv")
    # Full space is 10^6 (six parameters, ten values each).
    assert outcome.space_size == 10 ** 6
    # APS simulates only the issue-width x ROB grid: 10^2 points —
    # the paper's four-orders-of-magnitude narrowing.
    assert outcome.aps_sims == 100
    assert outcome.space_size / outcome.aps_sims == 10 ** 4
    # ANN needs several times more simulations to match (paper: 6.1x).
    assert outcome.ann_sims > 2 * outcome.aps_sims
    assert outcome.ann_sims < outcome.space_size // 100
    # APS lands near the true optimum (paper reports 5.96% error).
    assert outcome.aps_error < 0.25
