"""Table I benchmark: g(N) factors of the four kernels."""

from __future__ import annotations

from repro.experiments.table1_gfactors import run_table1


def test_table1_gfactors(benchmark, results_dir):
    table = benchmark(run_table1)
    print("\n" + table.render())
    table.save_csv(results_dir / "table1_gfactors.csv")
    derived = dict(zip(table.column("application"),
                       table.column("derived_g")))
    assert derived["Tiled matrix multiplication"] == "N^1.5"
    assert derived["Band sparse matrix multiplication"] == "N^1"
    assert derived["Stencil"] == "N^1"
    # Every kernel is at least linearly scalable (case I).
    assert all(r in ("linear", "superlinear")
               for r in table.column("regime"))
