"""Fig. 13 benchmark: APC at each layer of the memory hierarchy.

Paper claim: APC falls from L1 to LLC to DRAM for every benchmark —
the performance gap justifying the *on-chip* memory bound of Section V.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig13_apc import run_fig13


def test_fig13_apc_per_layer(benchmark, results_dir):
    table = run_once(benchmark, run_fig13, n_ops=12000)
    print("\n" + table.render())
    table.save_csv(results_dir / "fig13_apc_layers.csv")
    l1 = table.column("APC_L1")
    llc = table.column("APC_LLC")
    dram = table.column("APC_DRAM")
    names = table.column("benchmark")
    for name, a, b, c in zip(names, l1, llc, dram):
        assert a > b > c, f"APC ordering violated for {name}"
    # The on-chip/off-chip gap is substantial on average.
    import numpy as np
    gaps = np.array(l1) / np.array(dram)
    assert gaps.mean() > 3.0
