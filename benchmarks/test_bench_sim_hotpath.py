"""Perf-smoke: the simulator fast path must beat the seed hot path ≥6×.

The reference run — the paper's fluidanimate-like workload on a 4-core
chip, followed by the full analysis pass (per-core C-AMAT statistics and
Fig. 13 layer APC) — is executed twice on identical streams: once
through the verbatim seed implementation preserved in
``benchmarks/legacy_sim.py`` (NumPy tag-store scans, dict-scan MSHR
retirement, deque rescans in ``peek_issue_time``, per-access-object
traces, unmemoized double analysis) and once through the optimized
path.  Both must agree *exactly* — execution cycles, every per-access
record, layer APC and per-core statistics — and the optimized path must
be at least 6× faster (the floor absorbs CI jitter; the batched epoch
kernel of :mod:`repro.sim.kernel` carries most of the margin).

A second phase re-runs a small design sweep against a warm persistent
:class:`repro.sim.cache_store.SimCacheStore` and asserts it is
simulation-free: ``sim.runs`` stays 0 while every cost is answered
bit-identically from disk.

Wall times, the speedup and the warm-cache counters fold into the
harness record, ``results/BENCH_test_sim_hotpath_speedup.json``.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
from conftest import run_once, update_bench_record
from legacy_sim import legacy_analysis, legacy_simulate

from repro.dse.evaluate import SimulatorEvaluator
from repro.obs import get_registry
from repro.sim.cache_store import SimCacheStore
from repro.sim.cmp import CMPSimulator
from repro.sim.config import SimulatedChip
from repro.workloads.parsec import parsec_like

MIN_SPEEDUP = 6.0
SEED = 1234
# Long enough that the optimized timing window (~250ms) averages over
# scheduler-noise bursts the way the legacy window (~2s) does; at
# 20k ops the optimized window was short enough that the measured
# ratio swung ±10% run to run.
N_OPS = 60_000


def _streams(chip):
    """Identical streams for both implementations (regenerated per run)."""
    workload = parsec_like("fluidanimate", n_ops=N_OPS)
    return workload.streams(chip.n_cores, np.random.default_rng(SEED))


def _optimized_reference(chip, streams):
    """The optimized hot path: simulate, then the full analysis pass."""
    result = CMPSimulator(chip).run(streams)
    apc = result.layer_apc()
    stats = [result.core_stats(i) for i in range(chip.n_cores)]
    return result, apc, stats


def _warm_cache_sweep(tmp_path):
    """Run a small sweep twice against one store; return both phases."""
    workload = parsec_like("fluidanimate", n_ops=1_500)
    store = SimCacheStore(tmp_path / "sim-cache")
    base = replace(SimulatedChip(), n_cores=2)
    configs = [{"n": n, "issue_width": iw, "rob_size": 32,
                "l1_kib": 16.0, "l2_kib": 128.0}
               for n in (1, 2) for iw in (2, 4)]
    registry = get_registry()

    registry.reset()
    cold = SimulatorEvaluator(workload, seed=7, base_chip=base, cache=store)
    cold_costs = [cold.evaluate(c) for c in configs]
    cold_runs = registry.counter("sim.runs").value

    registry.reset()
    warm = SimulatorEvaluator(workload, seed=7, base_chip=base, cache=store)
    warm_costs = [warm.evaluate(c) for c in configs]
    warm_runs = registry.counter("sim.runs").value
    warm_hits = registry.counter("sim.cache.hits").value
    return cold_costs, cold_runs, warm_costs, warm_runs, warm_hits


def _measure_round(chip, legacy_s, optimized_s):
    """One measurement round; folds into the running per-path minima.

    Best-of-N on both sides: single-shot wall times swing under CI
    scheduler noise, the per-path minimum much less so.  The optimized
    window is ~7× shorter than the legacy one, so it samples calm
    scheduler epochs more coarsely — it gets two timed runs per
    iteration (interleaved with the legacy runs, so both paths sweep
    the same load epochs) to even the odds of each minimum landing in
    a quiet moment.  Stream generation is identical shared setup —
    excluded from both timing windows so the comparison is
    simulate+analyze only.
    """
    for _ in range(4):
        streams = _streams(chip)
        t0 = time.perf_counter()
        legacy_bundle = legacy_simulate(chip, streams)
        legacy_out = legacy_analysis(legacy_bundle)
        legacy_s = min(legacy_s, time.perf_counter() - t0)

        for _ in range(2):
            streams = _streams(chip)
            t0 = time.perf_counter()
            result, apc, stats = _optimized_reference(chip, streams)
            optimized_s = min(optimized_s, time.perf_counter() - t0)
    return (legacy_s, optimized_s,
            legacy_bundle, legacy_out, result, apc, stats)


def test_sim_hotpath_speedup(benchmark, results_dir, tmp_path):
    chip = replace(SimulatedChip(), n_cores=4)

    # Both per-path minima estimate the same noise-free floor, so extra
    # rounds only sharpen the estimate — they cannot manufacture a
    # speedup a genuinely slow implementation doesn't have.  A round
    # that already clears the floor ends the measurement; a shortfall
    # gets up to two re-measurement rounds before it counts as real
    # (the standard guard against a load burst landing on the short
    # windows).
    legacy_s = optimized_s = float("inf")
    rounds = 0
    for _ in range(3):
        (legacy_s, optimized_s, legacy_bundle, legacy_out,
         result, apc, stats) = _measure_round(chip, legacy_s, optimized_s)
        rounds += 1
        if legacy_s / optimized_s >= MIN_SPEEDUP:
            break

    # One more pass under the harness for the standard metrics record
    # (results/BENCH_test_sim_hotpath_speedup.json).
    run_once(benchmark, _optimized_reference, chip, _streams(chip))

    # Same physics, different constants: every observable must match the
    # seed implementation exactly (cycles, records, APC, statistics).
    assert result.exec_cycles == legacy_bundle["exec_cycles"]
    for core_result, legacy_core in zip(result.cores, legacy_bundle["cores"]):
        assert core_result.records == tuple(legacy_core._records)
        assert core_result.l1_hits == legacy_core.l1.hits
        assert core_result.l1_misses == legacy_core.l1.misses
    assert apc == legacy_out["layer_apc"]
    assert stats == legacy_out["core_stats"]

    # Warm-cache phase: second sweep over the same store is free.
    (cold_costs, cold_runs, warm_costs,
     warm_runs, warm_hits) = _warm_cache_sweep(tmp_path)
    assert warm_costs == cold_costs          # bit-identical floats
    assert cold_runs == len(cold_costs)
    assert warm_runs == 0                    # not one fresh simulation
    assert warm_hits == len(warm_costs)

    speedup = legacy_s / optimized_s
    path = update_bench_record(
        benchmark.name,
        n_cores=chip.n_cores,
        n_ops_per_core=N_OPS,
        legacy_s=legacy_s,
        optimized_s=optimized_s,
        speedup=speedup,
        min_speedup=MIN_SPEEDUP,
        measure_rounds=rounds,
        warm_cache={
            "sweep_points": len(cold_costs),
            "cold_sim_runs": cold_runs,
            "warm_sim_runs": warm_runs,
            "warm_cache_hits": warm_hits,
        },
    )
    print(f"\nlegacy {legacy_s:.3f}s  optimized {optimized_s:.3f}s  "
          f"speedup {speedup:.1f}x  warm-cache runs {warm_runs}  -> {path}")

    assert speedup >= MIN_SPEEDUP, (
        f"fast path only {speedup:.1f}x faster than the seed hot path "
        f"(floor {MIN_SPEEDUP}x); see {path}")
