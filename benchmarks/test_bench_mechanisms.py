"""Benchmark: the Section II-A concurrency-mechanism table.

Each hardware mechanism the paper names must move the C-AMAT parameter
it is supposed to move — and the dependencies between mechanisms are
themselves the lesson: issue width and prefetching cannot raise memory
concurrency while the cache is blocking (one MSHR), exactly as the
C-AMAT decomposition predicts (``C_M`` is a property of the
non-blocking miss machinery).
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.experiments.mechanisms import run_mechanism_sweep


def test_mechanism_sweep(benchmark, results_dir):
    table = run_once(benchmark, run_mechanism_sweep)
    print("\n" + table.render())
    table.save_csv(results_dir / "mechanisms_camat.csv")
    rows = {m: (ch, cm, c, camat) for m, ch, cm, c, camat in zip(
        table.column("mechanism"), table.column("C_H"),
        table.column("C_M"), table.column("C"), table.column("C-AMAT"))}
    base = rows["baseline (all off)"]
    # Non-blocking cache raises miss concurrency and cuts C-AMAT.
    mshr = rows["non-blocking cache (8 MSHRs)"]
    assert mshr[1] > base[1]
    assert mshr[3] < base[3]
    # Banking raises hit concurrency.
    banks = rows["multi-bank L1 (4 banks)"]
    assert banks[0] > base[0]
    # A bigger ROB raises overlap (memory-level parallelism reach).
    rob = rows["128-entry ROB"]
    assert rob[2] > base[2]
    # SMT raises concurrency even with one MSHR (threads overlap hits).
    smt = rows["SMT (2 threads)"]
    assert smt[2] > base[2]
    # Issue width and prefetching alone are powerless against a
    # blocking cache: C_M needs MSHRs.  (Exact no-ops on this workload.)
    assert rows["4-issue pipeline"][3] == pytest.approx(base[3])
    assert rows["stride prefetcher"][3] == pytest.approx(base[3])
    # Everything together multiplies: the full machine's C dwarfs any
    # single mechanism's.
    full = rows["all mechanisms"]
    singles = [mshr[2], banks[2], rob[2], smt[2]]
    assert full[2] > 2 * max(singles)
    assert full[3] < 0.5 * base[3]
