"""Perf-smoke: the sweep fabric and the tiered cache earn their keep.

Two claims, two benchmarks:

1. **Straggler sweep** — a 256-point space whose first 16 points are
   ~40 ms stragglers (all hashing to shard 0, so fixed chunking *and*
   shard ownership both hand them to one worker).  The PR 2 pool
   (:class:`~repro.dse.batch.ParallelEvaluator`) serializes the slow
   block on a single worker; the work-stealing fabric
   (:class:`~repro.dse.fabric.FabricEvaluator`) spreads it across all
   four.  Both must return bit-identical costs and the fabric must be
   at least 1.5× faster (typically ~2.5-3×; the floor absorbs CI
   jitter) with at least one recorded steal.

2. **Cache front vs disk** — warm :meth:`SimCacheStore.get` hits served
   by the in-memory LRU front must be at least 5× faster per call than
   the same keys read through the disk tier (typically 20-60×: a dict
   lookup vs open+read+parse).  Both tiers must return bit-identical
   costs.

Wall times, speedups and steal counts fold into the harness records,
``results/BENCH_test_fabric_sweep_speedup.json`` and
``results/BENCH_test_cache_front_speedup.json``.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np
from conftest import run_once, update_bench_record

from repro.dse.batch import ParallelEvaluator
from repro.dse.fabric import FabricEvaluator
from repro.obs import get_registry
from repro.sim.cache_store import SHARD_PREFIX_LEN, SimCacheStore

MIN_FABRIC_SPEEDUP = 1.5
MIN_FRONT_SPEEDUP = 5.0

WORKERS = 4
N_SLOW = 16
N_FAST = 240
SLOW_S = 0.04


class StragglerSurrogate:
    """Pure function of the config with a deliberately skewed profile.

    The ``slow`` points burn a fixed sleep (a stand-in for an expensive
    simulation) and all hash to shard 0 via :meth:`cache_key_for`, so
    the fabric assigns every one of them to worker slot 0 — the
    adversarial case work-stealing exists for.  Fast points spread over
    shards 64-255 (slots 1-3).  Costs are arithmetic in the config, so
    every scheduling of the batch is bit-identical.
    """

    def evaluate(self, config: dict) -> float:
        if config["slow"]:
            time.sleep(SLOW_S)
        return 0.5 * config["idx"] + (100.0 if config["slow"] else 0.0)

    def cache_key_for(self, config: dict) -> str:
        shard = 0 if config["slow"] else 64 + (7 * config["idx"]) % 192
        digest = hashlib.sha256(
            f"straggler-{config['idx']}".encode()).hexdigest()
        return f"{shard:02x}" + digest[SHARD_PREFIX_LEN:]


def _straggler_space() -> "list[dict]":
    """Slow block first, exactly one PR 2 chunk wide.

    With 256 points and 4 workers the pool's default chunking is
    ``ceil(256 / 16) = 16`` — the slow block fills chunk 0 end to end,
    so one worker eats every straggler while the rest go idle.
    """
    configs = [{"idx": i, "slow": True} for i in range(N_SLOW)]
    configs += [{"idx": N_SLOW + i, "slow": False} for i in range(N_FAST)]
    return configs


def test_fabric_sweep_speedup(benchmark, results_dir):
    configs = _straggler_space()
    surrogate = StragglerSurrogate()
    expected = np.array([0.5 * c["idx"] + (100.0 if c["slow"] else 0.0)
                         for c in configs])
    warmup = [{"idx": 10_000 + i, "slow": False} for i in range(2 * WORKERS)]

    with ParallelEvaluator(surrogate, workers=WORKERS) as pool, \
            FabricEvaluator(surrogate, workers=WORKERS,
                            unit_size=2) as fabric:
        # Spawn both pools before any timing window opens.
        pool.evaluate_batch(warmup)
        fabric.evaluate_batch(warmup)

        # Best-of-N per leg, same rationale as the sim-hotpath bench: a
        # load burst on one short window must not fail (or pass) the
        # comparison on its own.
        pool_s = fabric_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            pool_costs = pool.evaluate_batch(configs)
            pool_s = min(pool_s, time.perf_counter() - t0)

            t0 = time.perf_counter()
            fabric_costs = fabric.evaluate_batch(configs)
            fabric_s = min(fabric_s, time.perf_counter() - t0)
            if pool_s / fabric_s >= MIN_FABRIC_SPEEDUP:
                break

        # One more fabric pass under the harness for the canonical
        # metrics record (steal counters land in its snapshot).
        harness_costs = run_once(benchmark, fabric.evaluate_batch, configs)

    steals = get_registry().counter("dse.fabric.steals").value
    assert steals > 0, "straggler shard was never stolen from"

    # Scheduling changes wall time only — every leg is bit-identical.
    assert np.array_equal(pool_costs, expected)
    assert np.array_equal(fabric_costs, expected)
    assert np.array_equal(np.asarray(harness_costs), expected)

    speedup = pool_s / fabric_s
    path = update_bench_record(
        benchmark.name,
        n_configs=len(configs),
        n_slow=N_SLOW,
        slow_s=SLOW_S,
        workers=WORKERS,
        pool_s=pool_s,
        fabric_s=fabric_s,
        speedup=speedup,
        min_speedup=MIN_FABRIC_SPEEDUP,
        steals=steals,
    )
    print(f"\npool {pool_s:.3f}s  fabric {fabric_s:.3f}s  "
          f"speedup {speedup:.1f}x  steals {steals}  -> {path}")

    assert speedup >= MIN_FABRIC_SPEEDUP, (
        f"fabric sweep only {speedup:.1f}x faster than fixed chunking "
        f"(floor {MIN_FABRIC_SPEEDUP}x); see {path}")


N_KEYS = 64
FRONT_ROUNDS = 400      # 25,600 front gets
DISK_ROUNDS = 40        # 2,560 disk gets (each ~an order slower)


def _timed_gets(store: SimCacheStore, keys: "list[str]",
                rounds: int) -> float:
    t0 = time.perf_counter()
    for _ in range(rounds):
        for key in keys:
            store.get(key)
    return time.perf_counter() - t0


def test_cache_front_speedup(benchmark, results_dir, tmp_path):
    keys = [hashlib.sha256(f"bench-key-{i}".encode()).hexdigest()
            for i in range(N_KEYS)]
    root = tmp_path / "tier-bench"
    front = SimCacheStore(root, memory_entries=4 * N_KEYS)
    for i, key in enumerate(keys):
        front.put(key, 1.0 + 0.25 * i, origin="bench")

    # Same disk tier, but a one-entry front: cycling 64 distinct keys
    # evicts on every get, so every lookup pays the file round-trip.
    disk = SimCacheStore(root, memory_entries=1)

    # Bit-identical costs whichever tier answers.
    assert [disk.get(k) for k in keys] == [front.get(k) for k in keys]

    # Untimed warm cycle each (page cache, branch predictors).
    _timed_gets(front, keys, 1)
    _timed_gets(disk, keys, 1)

    front_s = run_once(benchmark, _timed_gets, front, keys, FRONT_ROUNDS)
    disk_s = _timed_gets(disk, keys, DISK_ROUNDS)

    front_gets = N_KEYS * FRONT_ROUNDS
    disk_gets = N_KEYS * DISK_ROUNDS
    # The timed windows hit the tiers they claim to.
    assert front.front_hits >= front_gets
    assert disk.front_hits <= N_KEYS          # only the key it just kept
    assert disk.hits - disk.front_hits >= disk_gets

    front_us = 1e6 * front_s / front_gets
    disk_us = 1e6 * disk_s / disk_gets
    speedup = disk_us / front_us
    path = update_bench_record(
        benchmark.name,
        n_keys=N_KEYS,
        front_gets=front_gets,
        disk_gets=disk_gets,
        front_us_per_get=front_us,
        disk_us_per_get=disk_us,
        speedup=speedup,
        min_speedup=MIN_FRONT_SPEEDUP,
    )
    print(f"\nfront {front_us:.2f}us/get  disk {disk_us:.2f}us/get  "
          f"speedup {speedup:.1f}x  -> {path}")

    assert speedup >= MIN_FRONT_SPEEDUP, (
        f"memory front only {speedup:.1f}x faster than the disk tier "
        f"(floor {MIN_FRONT_SPEEDUP}x); see {path}")
