"""Ablation benchmarks: the model's two new factors and its miss curve.

These are the "design choices called out in DESIGN.md": removing the
concurrency factor or the capacity-bounded problem size must visibly
change the optimal design, or the paper's C^2 coupling would be
superfluous.
"""

from __future__ import annotations

from repro.experiments.ablation import (
    run_factor_ablation,
    run_miss_curve_ablation,
)


def test_ablation_factors(benchmark, results_dir):
    table = benchmark(run_factor_ablation)
    print("\n" + table.render())
    table.save_csv(results_dir / "ablation_factors.csv")
    rows = {v: (case, n) for v, case, n in zip(
        table.column("variant"), table.column("case"), table.column("N*"))}
    # Removing capacity scaling flips the optimization case: a fixed
    # problem size has a finite time-optimal core count (case II),
    # while the scalable workload maximizes throughput (case I).
    assert rows["full (C2-Bound)"][0] == "maximize-throughput"
    assert rows["no capacity scaling (g=1)"][0] == "minimize-time"
    # Removing concurrency changes the optimal core count of the
    # fixed-size variants (the stall term dominates differently).
    n_fixed_c = rows["no capacity scaling (g=1)"][1]
    n_fixed_noc = rows["neither (Amdahl+AMAT)"][1]
    assert n_fixed_c != n_fixed_noc


def test_ablation_miss_curve(benchmark, results_dir):
    table = benchmark(run_miss_curve_ablation)
    print("\n" + table.render())
    table.save_csv(results_dir / "ablation_miss_curve.csv")
    ns = table.column("N*")
    caches = table.column("A1+A2")
    # A steeper miss curve (higher alpha) makes capacity more valuable:
    # the optimizer buys more cache area per core.
    assert caches[-1] > caches[0]
    # And the optimum is genuinely sensitive to the exponent.
    assert len(set(ns)) > 1 or caches[-1] / caches[0] > 1.2
