"""Fig. 11 benchmark: throughput W/T vs N (f_mem = 0.9)."""

from __future__ import annotations

import numpy as np

from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.experiments.figs08_11_scaling import run_scaling_figure


def test_fig11_throughput(benchmark, results_dir):
    table = benchmark(run_scaling_figure, f_mem=0.9, quantity="throughput")
    print("\n" + table.render())
    table.save_csv(results_dir / "fig11_WT_ratio_fmem09.csv")
    wt1 = np.array(table.column("W/T(C=1)"))
    wt8 = np.array(table.column("W/T(C=8)"))
    assert np.all(wt8 > wt1)
    # Cross-figure claim: throughput decreases with f_mem
    # (compare un-normalized throughput at N = 200).
    m = MachineParameters()
    th_low = C2BoundOptimizer(ApplicationProfile(
        f_seq=0.02, f_mem=0.3), m).evaluate(200).throughput
    th_high = C2BoundOptimizer(ApplicationProfile(
        f_seq=0.02, f_mem=0.9), m).evaluate(200).throughput
    assert th_high < th_low
