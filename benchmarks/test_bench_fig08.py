"""Fig. 8 benchmark: W and T vs N (g = N^{3/2}, f_mem = 0.3)."""

from __future__ import annotations

import numpy as np

from repro.experiments.figs08_11_scaling import run_scaling_figure


def test_fig08_memory_bounded_scaling(benchmark, results_dir):
    table = benchmark(run_scaling_figure, f_mem=0.3, quantity="WT")
    print("\n" + table.render())
    table.save_csv(results_dir / "fig08_WT_fmem03.csv")
    ns = np.array(table.column("N"), dtype=float)
    w = np.array(table.column("W"))
    t1 = np.array(table.column("T(C=1)"))
    t8 = np.array(table.column("T(C=8)"))
    # Problem size follows g(N) = N^{3/2} exactly.
    assert np.allclose(w, ns ** 1.5, rtol=1e-9)
    # Higher memory concurrency lowers execution time at every N, and
    # the T(C=8)/T(C=1) gap at N=1000 is significant (paper Section IV).
    assert np.all(t8 < t1)
    assert t1[-1] / t8[-1] > 2.0
