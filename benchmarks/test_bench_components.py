"""Component performance benchmarks (pytest-benchmark proper).

Not paper artifacts — these track the library's own hot paths so
regressions in the analyzer, the detector, the simulator or the
optimizer are visible in CI-style runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.camat import AccessTrace, TraceAnalyzer
from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.detector import CAMATDetector
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import parsec_like


@pytest.fixture(scope="module")
def big_trace() -> AccessTrace:
    rng = np.random.default_rng(0)
    n = 20000
    starts = np.cumsum(rng.integers(0, 4, n)).astype(np.int64)
    hits = rng.integers(1, 4, n).astype(np.int64)
    penalties = np.where(rng.random(n) < 0.1,
                         rng.integers(50, 300, n), 0).astype(np.int64)
    return AccessTrace.from_arrays(starts, hits, penalties)


def test_trace_analyzer_throughput(benchmark, big_trace):
    analyzer = TraceAnalyzer()
    stats = benchmark(analyzer.analyze, big_trace)
    assert stats.accesses == len(big_trace)


def test_detector_throughput(benchmark, big_trace):
    ordered = sorted(big_trace, key=lambda a: a.start)

    def run():
        det = CAMATDetector(window=1 << 14)
        for a in ordered:
            det.observe(a.start, a.hit_cycles, a.miss_penalty)
        return det.report()

    report = benchmark(run)
    assert report.accesses == len(big_trace)


def test_simulator_throughput(benchmark):
    workload = parsec_like("ocean", n_ops=4000)
    chip = SimulatedChip(n_cores=2)

    def run():
        rng = np.random.default_rng(1)
        return CMPSimulator(chip).run(workload.streams(2, rng))

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.exec_cycles > 0


def test_optimizer_throughput(benchmark):
    app = ApplicationProfile(f_seq=0.02, f_mem=0.3, concurrency=4.0)
    machine = MachineParameters()

    def run():
        return C2BoundOptimizer(app, machine).optimize(n_max=1000)

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.best.n >= 1
