"""Section V benchmark: on-chip-memory-bounded problem size."""

from __future__ import annotations

from repro.experiments.capacity_bound import run_capacity_bound


def test_capacity_bounded_problem_size(benchmark, results_dir):
    table = benchmark(run_capacity_bound)
    print("\n" + table.render())
    table.save_csv(results_dir / "capacity_bound.csv")
    cases = table.column("case")
    bounded = table.column("bounded_Z_flops")
    # Bounded size grows with capacity; the application crosses from
    # memory-bound to processor-bound once its working set fits.
    assert all(b2 > b1 for b1, b2 in zip(bounded, bounded[1:]))
    assert cases[0] == "memory-bound"
    assert cases[-1] == "processor-bound"
