"""Verbatim seed copies of the simulator hot path — the benchmark baseline.

``benchmarks/test_bench_sim_hotpath.py`` measures the fast-path rework
(columnar traces, MSHR retirement heap, committed-done watermark,
list-backed tag stores, NoC latency table, memoized analyses) against
the implementation this repository shipped *before* the rework.  To keep
that comparison honest at runtime — independent of which revision is
checked out — the pre-rework classes are preserved here verbatim
(modulo ``Legacy`` prefixes and imports):

- :class:`LegacySetAssociativeCache` — NumPy tag store,
  ``np.argmax(row == tag)`` lookups;
- :class:`LegacyMSHRFile` — O(entries) dict-scan retirement (also the
  oracle of ``tests/sim/test_mshr_property.py``);
- :class:`LegacyDRAMModel` — NumPy per-bank state;
- :class:`LegacyMeshNoC` — per-call Manhattan-hop arithmetic;
- :class:`LegacyCoreModel` — deque rescan in ``peek_issue_time``, NumPy
  scalar indexing in ``step``, list-of-tuples records;
- :class:`LegacyMemoryHierarchy` + :func:`legacy_simulate` — the seed
  event loop and per-access-object trace construction;
- :func:`legacy_analysis` — the seed analysis pass, which re-built and
  re-analyzed every trace for ``layer_apc`` and again per
  ``core_stats`` call.

The semantics are bit-identical to the optimized path (enforced by
``tests/sim/test_differential_golden.py`` against frozen digests); only
the constants differ.
"""

from __future__ import annotations

import heapq
import math
from collections import deque

import numpy as np

from repro.camat.analyzer import TraceAnalyzer
from repro.camat.trace import AccessTrace, MemoryAccess
from repro.errors import InvalidParameterError, SimulationError
from repro.metrics.apc import APCMeasurement, LayerAPC
from repro.sim.prefetch import NextLinePrefetcher, StridePrefetcher

__all__ = ["LegacySetAssociativeCache", "LegacyMSHRFile",
           "LegacyDRAMModel", "LegacyMeshNoC", "LegacyCoreModel",
           "LegacyMemoryHierarchy", "legacy_simulate", "legacy_analysis"]


class LegacyMSHRFile:
    """Seed MSHR file: O(entries) dict-scan retirement."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise InvalidParameterError(
                f"MSHR entries must be >= 1, got {entries}")
        self.capacity = entries
        self._pending: dict[int, float] = {}
        self.primary_misses = 0
        self.secondary_merges = 0
        self.stall_events = 0

    def _retire(self, now: float) -> None:
        done = [line for line, t in self._pending.items() if t <= now]
        for line in done:
            del self._pending[line]

    def outstanding(self, now: float) -> int:
        self._retire(now)
        return len(self._pending)

    def lookup(self, line: int, now: float) -> "float | None":
        self._retire(now)
        return self._pending.get(line)

    def earliest_free_time(self, now: float) -> float:
        self._retire(now)
        if len(self._pending) < self.capacity:
            return now
        self.stall_events += 1
        return min(self._pending.values())

    def allocate(self, line: int, fill_time: float, now: float) -> None:
        self._retire(now)
        if line in self._pending:
            raise InvalidParameterError(
                f"line {line} already outstanding; merge instead")
        if len(self._pending) >= self.capacity:
            raise InvalidParameterError("MSHR file full at allocation time")
        self._pending[line] = fill_time
        self.primary_misses += 1

    def merge(self, line: int, now: float) -> float:
        self._retire(now)
        if line not in self._pending:
            raise InvalidParameterError(f"no outstanding miss to line {line}")
        self.secondary_merges += 1
        return self._pending[line]

    def stats(self) -> dict:
        return {"primary_misses": self.primary_misses,
                "secondary_merges": self.secondary_merges,
                "stall_events": self.stall_events}


class LegacySetAssociativeCache:
    """Seed tag store: NumPy rows, argmax/argmin lookups."""

    def __init__(self, config) -> None:
        self.config = config
        sets = config.num_sets
        assoc = max(config.num_lines // sets, 1)
        self._assoc = assoc
        self._sets = sets
        self._tags = np.full((sets, assoc), -1, dtype=np.int64)
        self._lru = np.zeros((sets, assoc), dtype=np.int64)
        self._dirty = np.zeros((sets, assoc), dtype=bool)
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def line_of(self, address: int) -> int:
        if address < 0:
            raise InvalidParameterError(f"address must be >= 0, got {address}")
        return address // self.config.line_bytes

    def bank_of(self, address: int) -> int:
        return self.line_of(address) % self.config.banks

    def access_rw(self, address: int,
                  write: bool = False) -> "tuple[bool, int | None]":
        line = self.line_of(address)
        set_idx = line % self._sets
        tag = line // self._sets
        self._tick += 1
        row = self._tags[set_idx]
        way = int(np.argmax(row == tag)) if (row == tag).any() else -1
        if way >= 0:
            self._lru[set_idx, way] = self._tick
            if write:
                self._dirty[set_idx, way] = True
            self.hits += 1
            return True, None
        self.misses += 1
        victim = int(np.argmin(self._lru[set_idx]))
        writeback: "int | None" = None
        if self._dirty[set_idx, victim] and self._tags[set_idx, victim] >= 0:
            self.writebacks += 1
            writeback = int(self._tags[set_idx, victim]) * self._sets + set_idx
        self._tags[set_idx, victim] = tag
        self._lru[set_idx, victim] = self._tick
        self._dirty[set_idx, victim] = write
        return False, writeback

    def probe(self, address: int) -> bool:
        line = self.line_of(address)
        set_idx = line % self._sets
        tag = line // self._sets
        return bool((self._tags[set_idx] == tag).any())

    def invalidate(self, address: int) -> bool:
        line = self.line_of(address)
        set_idx = line % self._sets
        tag = line // self._sets
        row = self._tags[set_idx]
        mask = row == tag
        if not mask.any():
            return False
        way = int(np.argmax(mask))
        if self._dirty[set_idx, way]:
            self.writebacks += 1
        self._tags[set_idx, way] = -1
        self._lru[set_idx, way] = 0
        self._dirty[set_idx, way] = False
        return True

    def fill(self, address: int) -> "int | None":
        line = self.line_of(address)
        set_idx = line % self._sets
        tag = line // self._sets
        self._tick += 1
        row = self._tags[set_idx]
        if (row == tag).any():
            return None
        victim = int(np.argmin(self._lru[set_idx]))
        writeback: "int | None" = None
        if self._dirty[set_idx, victim] and self._tags[set_idx, victim] >= 0:
            self.writebacks += 1
            writeback = int(self._tags[set_idx, victim]) * self._sets + set_idx
        self._tags[set_idx, victim] = tag
        self._lru[set_idx, victim] = max(self._tick - self._assoc, 1)
        self._dirty[set_idx, victim] = False
        return writeback

    def set_dirty(self, address: int) -> bool:
        line = self.line_of(address)
        set_idx = line % self._sets
        tag = line // self._sets
        mask = self._tags[set_idx] == tag
        if not mask.any():
            return False
        self._dirty[set_idx, int(np.argmax(mask))] = True
        return True


class LegacyDRAMModel:
    """Seed DRAM model: NumPy per-bank arrays."""

    def __init__(self, config) -> None:
        self.config = config
        self._open_row = np.full(config.banks, -1, dtype=np.int64)
        self._bank_free = np.zeros(config.banks, dtype=np.float64)
        self.requests = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.busy_cycles = 0.0
        self.queue_wait_cycles = 0.0
        self._last_end = 0.0

    def bank_of(self, address: int) -> int:
        if address < 0:
            raise InvalidParameterError(f"address must be >= 0, got {address}")
        return (address // self.config.row_bytes) % self.config.banks

    def row_of(self, address: int) -> int:
        return address // (self.config.row_bytes * self.config.banks)

    def access(self, address: int, time: float) -> float:
        cfg = self.config
        bank = self.bank_of(address)
        row = self.row_of(address)
        start = max(time, float(self._bank_free[bank]))
        self.queue_wait_cycles += start - time
        open_row = int(self._open_row[bank])
        if open_row == row:
            latency = cfg.row_hit
            self.row_hits += 1
        elif open_row < 0:
            latency = cfg.row_miss
            self.row_misses += 1
        else:
            latency = cfg.row_conflict
            self.row_conflicts += 1
        finish = start + latency + cfg.bus_cycles
        self._open_row[bank] = row
        self._bank_free[bank] = finish
        self.requests += 1
        self.busy_cycles += finish - start
        self._last_end = max(self._last_end, finish)
        return finish


class LegacyMeshNoC:
    """Seed NoC: Manhattan-hop arithmetic on every latency call."""

    def __init__(self, n_nodes: int, config) -> None:
        if n_nodes < 1:
            raise InvalidParameterError(f"need >= 1 node, got {n_nodes}")
        self.n_nodes = n_nodes
        self.config = config
        self.side = max(int(math.ceil(math.sqrt(n_nodes))), 1)
        self.traversals = 0

    def coordinates(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.n_nodes:
            raise InvalidParameterError(
                f"node {node} outside [0, {self.n_nodes})")
        return node % self.side, node // self.side

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        self.traversals += 1
        return (self.config.router_latency
                + self.config.hop_latency * self.hops(src, dst))

    def round_trip(self, src: int, dst: int) -> int:
        return 2 * self.latency(src, dst)


class LegacyMemoryHierarchy:
    """Seed shared hierarchy with object-based trace construction."""

    def __init__(self, chip) -> None:
        self.chip = chip
        n = chip.n_cores
        self.slices = [LegacySetAssociativeCache(chip.l2_slice)
                       for _ in range(n)]
        self.slice_mshrs = [LegacyMSHRFile(chip.l2_slice.mshr_entries)
                            for _ in range(n)]
        self._bank_free = [[0] * chip.l2_slice.banks for _ in range(n)]
        self.dram = LegacyDRAMModel(chip.dram)
        self.noc = LegacyMeshNoC(n, chip.noc)
        self.l2_accesses = 0
        self.l2_hits = 0
        self._l2_records: list[tuple[int, int, int]] = []
        self._dram_records: list[tuple[int, int]] = []
        self._l1_caches = None
        self._sharers: dict[int, set[int]] = {}
        self.invalidations = 0
        self.upgrades = 0
        self.dram_writes = 0

    def slice_of(self, line: int) -> int:
        return line % self.chip.n_cores

    def register_l1s(self, caches) -> None:
        if len(caches) != self.chip.n_cores:
            raise SimulationError(
                f"need {self.chip.n_cores} L1s, got {len(caches)}")
        self._l1_caches = caches

    def _invalidate_sharers(self, core_id: int, address: int,
                            l1_line: int) -> int:
        if self._l1_caches is None:
            return 0
        sharers = self._sharers.get(l1_line)
        if not sharers:
            self._sharers[l1_line] = {core_id}
            return 0
        extra = 0
        for other in list(sharers):
            if other == core_id:
                continue
            if self._l1_caches[other].invalidate(address):
                self.invalidations += 1
            extra = max(extra, self.noc.round_trip(core_id, other))
        self._sharers[l1_line] = {core_id}
        return extra

    def upgrade(self, core_id: int, address: int, time: int) -> int:
        if self._l1_caches is None:
            return time
        l1_line = address // self.chip.l2_slice.line_bytes
        sharers = self._sharers.get(l1_line)
        if sharers is None or sharers == {core_id}:
            self._sharers[l1_line] = {core_id}
            return time
        self.upgrades += 1
        return time + self._invalidate_sharers(core_id, address, l1_line)

    def writeback(self, core_id: int, address: int, time: int) -> None:
        cfg = self.chip.l2_slice
        line = address // cfg.line_bytes
        home = self.slice_of(line)
        arrive = time + self.noc.latency(core_id, home)
        bank = line % cfg.banks
        start = max(arrive, self._bank_free[home][bank])
        self._bank_free[home][bank] = start + 1
        _, l2_victim = self.slices[home].access_rw(address, write=True)
        if l2_victim is not None:
            self.dram.access(l2_victim * cfg.line_bytes, start)
            self.dram_writes += 1
        self._sharers.pop(line, None)

    def service_miss(self, core_id: int, address: int, time: int,
                     write: bool = False) -> int:
        if time < 0:
            raise SimulationError(f"negative request time {time}")
        cfg = self.chip.l2_slice
        line = address // cfg.line_bytes
        home = self.slice_of(line)
        arrive = time + self.noc.latency(core_id, home)
        if self._l1_caches is not None:
            if write:
                arrive += self._invalidate_sharers(core_id, address, line)
            else:
                self._sharers.setdefault(line, set()).add(core_id)
        bank = line % cfg.banks
        start = max(arrive, self._bank_free[home][bank])
        self._bank_free[home][bank] = start + 1
        self.l2_accesses += 1
        slice_cache = self.slices[home]
        mshr = self.slice_mshrs[home]
        outstanding = mshr.lookup(line, start)
        if outstanding is not None:
            done = int(outstanding)
            penalty = max(done - start - cfg.hit_latency, 0)
            self._l2_records.append((start, cfg.hit_latency, penalty))
        else:
            l2_hit, l2_victim = slice_cache.access_rw(address, write=False)
            if l2_victim is not None:
                self.dram.access(l2_victim * cfg.line_bytes, start)
                self.dram_writes += 1
            if l2_hit:
                self.l2_hits += 1
                done = start + cfg.hit_latency
                self._l2_records.append((start, cfg.hit_latency, 0))
            else:
                alloc = max(start + cfg.hit_latency,
                            int(mshr.earliest_free_time(start)))
                dram_done = int(self.dram.access(address, alloc))
                self._dram_records.append((alloc, dram_done - alloc))
                mshr.allocate(line, dram_done, alloc)
                done = dram_done
                self._l2_records.append(
                    (start, cfg.hit_latency, done - start - cfg.hit_latency))
        return done + self.noc.latency(home, core_id)

    def l2_trace(self) -> "AccessTrace | None":
        if not self._l2_records:
            return None
        return AccessTrace(
            MemoryAccess(start=s, hit_cycles=h, miss_penalty=p)
            for s, h, p in self._l2_records)

    def dram_trace(self) -> "AccessTrace | None":
        if not self._dram_records:
            return None
        return AccessTrace(
            MemoryAccess(start=s, hit_cycles=max(d, 1), miss_penalty=0)
            for s, d in self._dram_records)


class LegacyCoreModel:
    """Seed core model: NumPy scalar indexing + deque rescans."""

    def __init__(self, core_id: int, micro, l1_config,
                 addresses, gaps, writes=None) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        gaps = np.asarray(gaps, dtype=np.int64)
        if writes is None:
            writes = np.zeros(addresses.shape, dtype=bool)
        writes = np.asarray(writes, dtype=bool)
        self.core_id = core_id
        self.micro = micro
        self.l1 = LegacySetAssociativeCache(l1_config)
        self.mshr = LegacyMSHRFile(l1_config.mshr_entries)
        self._issue_width = micro.issue_width
        self.addresses = addresses
        self.gaps = gaps
        self.writes = writes
        self.instr_index = (np.cumsum(gaps)
                            + np.arange(addresses.size, dtype=np.int64))
        self._next = 0
        self._bank_free = [0] * l1_config.banks
        self._outstanding: deque[tuple[int, int]] = deque()
        self._records: list[tuple[int, int, int]] = []
        self._last_done = 0
        self._issue_barrier = 0
        if l1_config.prefetch == "nextline":
            self._prefetcher = NextLinePrefetcher(l1_config.prefetch_degree)
        elif l1_config.prefetch == "stride":
            self._prefetcher = StridePrefetcher(l1_config.prefetch_degree)
        else:
            self._prefetcher = None
        self._prefetched_lines: set[int] = set()
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    @property
    def done(self) -> bool:
        return self._next >= self.addresses.size

    def peek_issue_time(self) -> int:
        if self.done:
            raise SimulationError("core already finished")
        idx = int(self.instr_index[self._next])
        t = max(idx // self._issue_width, self._issue_barrier)
        bound = idx - self.micro.rob_size
        for instr, done_t in self._outstanding:
            if instr <= bound:
                t = max(t, done_t)
            else:
                break
        return t

    def step(self, hierarchy) -> int:
        if self.done:
            raise SimulationError("core already finished")
        j = self._next
        self._next += 1
        idx = int(self.instr_index[j])
        address = int(self.addresses[j])
        is_write = bool(self.writes[j])
        issue = max(idx // self._issue_width, self._issue_barrier)
        bound = idx - self.micro.rob_size
        while self._outstanding and self._outstanding[0][0] <= bound:
            instr, done_t = self._outstanding.popleft()
            issue = max(issue, done_t)
        cfg = self.l1.config
        bank = self.l1.bank_of(address)
        issue = max(issue, self._bank_free[bank])
        self._bank_free[bank] = issue + 1
        hit_lat = cfg.hit_latency
        line = self.l1.line_of(address)
        outstanding_fill = self.mshr.lookup(line, issue)
        if outstanding_fill is not None:
            self.l1.misses += 1
            self.mshr.merge(line, issue)
            if is_write:
                self.l1.set_dirty(address)
            done = max(int(outstanding_fill), issue + hit_lat)
        else:
            hit, victim = self.l1.access_rw(address, write=is_write)
            if victim is not None:
                hierarchy.writeback(self.core_id,
                                    victim * cfg.line_bytes, issue)
            if hit:
                done = issue + hit_lat
                if is_write:
                    done = max(done, hierarchy.upgrade(
                        self.core_id, address, issue) + hit_lat)
            else:
                alloc = max(issue + hit_lat,
                            int(self.mshr.earliest_free_time(issue)))
                if alloc > issue + hit_lat:
                    self._issue_barrier = max(self._issue_barrier, alloc)
                done = hierarchy.service_miss(self.core_id, address, alloc,
                                              write=is_write)
                self.mshr.allocate(line, done, alloc)
        penalty = max(done - issue - hit_lat, 0)
        self._records.append((issue, hit_lat, penalty))
        self._outstanding.append((idx, done))
        self._last_done = max(self._last_done, done)
        if self._prefetcher is not None:
            was_hit = penalty == 0 and outstanding_fill is None
            if was_hit and line in self._prefetched_lines:
                self.prefetches_useful += 1
                self._prefetched_lines.discard(line)
            targets = (self._prefetcher.on_hit(line) if was_hit
                       else self._prefetcher.on_miss(line))
            self._issue_prefetches(hierarchy, targets, issue + hit_lat)
        return done

    def _issue_prefetches(self, hierarchy, lines, time: int) -> None:
        cfg = self.l1.config
        for line in lines:
            if self.mshr.outstanding(time) >= cfg.mshr_entries - 1:
                break
            address = line * cfg.line_bytes
            if (self.l1.probe(address)
                    or self.mshr.lookup(line, time) is not None):
                continue
            fill_time = hierarchy.service_miss(self.core_id, address, time)
            self.mshr.allocate(line, fill_time, time)
            victim = self.l1.fill(address)
            if victim is not None:
                hierarchy.writeback(self.core_id,
                                    victim * cfg.line_bytes, time)
            self._prefetched_lines.add(line)
            self.prefetches_issued += 1

    def trace(self) -> AccessTrace:
        """Seed-style per-access-object trace (rebuilt on every call)."""
        if not self._records:
            raise SimulationError("core executed no memory operations")
        return AccessTrace(
            MemoryAccess(start=s, hit_cycles=h, miss_penalty=p)
            for s, h, p in self._records)

    def finish_cycle(self) -> int:
        total_instr = int(self.gaps.sum()) + self.addresses.size
        return max(self._last_done,
                   total_instr // max(self._issue_width, 1))


def legacy_simulate(chip, streams) -> dict:
    """The seed event loop over legacy components (single-threaded cores).

    Returns a plain dict bundle (cores, hierarchy, exec_cycles) — enough
    for :func:`legacy_analysis` to replay the seed analysis pass.
    """
    if len(streams) != chip.n_cores:
        raise SimulationError(
            f"need {chip.n_cores} streams, got {len(streams)}")
    hierarchy = LegacyMemoryHierarchy(chip)
    cores = [LegacyCoreModel(i, chip.core, chip.l1, *stream)
             for i, stream in enumerate(streams)]
    hierarchy.register_l1s([core.l1 for core in cores])
    heap: list[tuple[int, int]] = []
    for core in cores:
        if not core.done:
            heapq.heappush(heap, (core.peek_issue_time(), core.core_id))
    while heap:
        _, cid = heapq.heappop(heap)
        core = cores[cid]
        core.step(hierarchy)
        if not core.done:
            heapq.heappush(heap, (core.peek_issue_time(), cid))
    exec_cycles = max(core.finish_cycle() for core in cores)
    return {"cores": cores, "hierarchy": hierarchy,
            "exec_cycles": exec_cycles}


def legacy_analysis(bundle: dict) -> dict:
    """The seed analysis pass: no memoization anywhere.

    ``layer_apc`` analyzed a freshly built object trace per core, and
    each ``core_stats`` call rebuilt and re-analyzed the same trace —
    exactly what ``SimulationResult`` did before memoization.
    """
    cores = bundle["cores"]
    hierarchy = bundle["hierarchy"]
    analyzer = TraceAnalyzer()
    l1_acc = 0
    l1_active = 0
    for core in cores:
        stats = analyzer.analyze(core.trace())
        l1_acc += stats.accesses
        l1_active += stats.memory_active_wall_cycles

    def layer(trace):
        if trace is None:
            return APCMeasurement(accesses=0, active_cycles=0)
        stats = analyzer.analyze(trace)
        return APCMeasurement(accesses=stats.accesses,
                              active_cycles=stats.memory_active_wall_cycles)

    apc = LayerAPC(
        l1=APCMeasurement(accesses=l1_acc, active_cycles=l1_active),
        llc=layer(hierarchy.l2_trace()),
        dram=layer(hierarchy.dram_trace()),
    )
    core_stats = [analyzer.analyze(core.trace()) for core in cores]
    return {"layer_apc": apc, "core_stats": core_stats}
