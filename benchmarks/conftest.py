"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure, asserts the paper's
qualitative claims about it (who wins, where crossovers fall), and saves
the series as CSV under ``results/``.  :func:`run_once` additionally
persists a ``BENCH_<test>.json`` record there — wall time, provenance
and the run's headline metrics from the observability registry — so a
benchmark's simulation budget and cache behavior are auditable after
the fact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.obs import MANIFEST_SCHEMA, get_registry, git_sha, package_version

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark.

    Also writes ``results/BENCH_<test>.json`` with the wall time and the
    metrics the run published (counters/gauges are reset first, so the
    record holds this benchmark's numbers, not the session's total).
    """
    registry = get_registry()
    registry.reset()
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                iterations=1, rounds=1)
    wall_time_s = time.perf_counter() - t0
    _write_bench_record(benchmark.name, fn, wall_time_s,
                        registry.snapshot())
    return result


def _write_bench_record(test_name: str, fn, wall_time_s: float,
                        metrics: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = {
        "schema": MANIFEST_SCHEMA,
        "experiment": getattr(fn, "__name__", str(fn)),
        "test": test_name,
        "package_version": package_version(),
        "git_sha": git_sha(),
        "wall_time_s": wall_time_s,
        "metrics": metrics,
    }
    path = RESULTS_DIR / f"BENCH_{test_name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True,
                               default=str) + "\n")


def update_bench_record(test_name: str, **fields) -> Path:
    """Merge extra fields into the harness record for ``test_name``.

    ``BENCH_<test>.json`` is the one canonical artifact per benchmark —
    the harness writes it (wall time + metrics), and benchmarks that
    compute headline numbers of their own (speedups, per-leg wall
    times) fold them into the *same* file through this helper instead
    of writing a second, differently-named twin.  ``perf_sentry.py``
    and the CI artifact uploads therefore agree on one name per bench.
    """
    path = RESULTS_DIR / f"BENCH_{test_name}.json"
    record = json.loads(path.read_text(encoding="utf-8"))
    record.update(fields)
    path.write_text(json.dumps(record, indent=2, sort_keys=True,
                               default=str) + "\n")
    return path
