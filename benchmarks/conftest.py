"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure, asserts the paper's
qualitative claims about it (who wins, where crossovers fall), and saves
the series as CSV under ``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
