"""Fig. 7 benchmark: core allocation across three application archetypes."""

from __future__ import annotations

from repro.experiments.fig07_allocation import run_fig7


def test_fig07_allocation(benchmark, results_dir):
    table = benchmark(run_fig7, 64)
    print("\n" + table.render())
    table.save_csv(results_dir / "fig07_allocation.csv")
    cores = table.column("cores")
    # Paper ordering: the sequential/low-C app gets the fewest cores,
    # the parallel/high-C app the most, the middle app in between.
    assert cores[0] < cores[2] < cores[1]
