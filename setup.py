"""Thin setup.py shim.

The environment has setuptools but no ``wheel`` package, so PEP 517
editable installs (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
