#!/usr/bin/env python
"""Multi-application resource management (paper Fig. 7).

Three applications with different sequential fractions and memory
concurrencies share one CMP.  The C2-Bound utilities drive:

1. core allocation (water-filling on marginal throughput), and
2. shared-cache partitioning (utility-based, per miss-rate curves).

Run:  python examples/multi_app_scheduling.py
"""

from __future__ import annotations

from repro.alloc import allocate_cores, partition_cache
from repro.capacity.missrate import PowerLawMissRate
from repro.core import ApplicationProfile, MachineParameters
from repro.laws.gfunction import PowerLawG


def main() -> None:
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    g = PowerLawG(1.0)
    apps = [
        ApplicationProfile(name="app1 (seq-heavy, C=1)", f_seq=0.40,
                           f_mem=0.4, concurrency=1.0, g=g),
        ApplicationProfile(name="app2 (parallel, C=8)", f_seq=0.01,
                           f_mem=0.4, concurrency=8.0, g=g),
        ApplicationProfile(name="app3 (middle, C=4)", f_seq=0.10,
                           f_mem=0.4, concurrency=4.0, g=g),
    ]

    print("=== Core allocation (Fig. 7) ===")
    for total in (16, 64, 256):
        result = allocate_cores(apps, machine, total)
        parts = ", ".join(f"{app.name}: {c}"
                          for app, c in zip(apps, result.cores))
        print(f"{total:4d} cores -> {parts}")
    print("\nThe sequential/low-concurrency app saturates immediately; the"
          "\nparallel/high-concurrency app absorbs almost everything —"
          "\nexactly the paper's Fig. 7 narrative.\n")

    print("=== Shared LLC partitioning ===")
    curves = [
        PowerLawMissRate(base_miss_rate=0.30, base_capacity_kib=256.0),
        PowerLawMissRate(base_miss_rate=0.10, base_capacity_kib=256.0),
        PowerLawMissRate(base_miss_rate=0.02, base_capacity_kib=256.0),
    ]
    intensities = [0.4 * 1.0, 0.4 * 8.0, 0.4 * 4.0]  # f_mem * activity
    result = partition_cache(curves, intensities,
                             total_kib=8192.0, n_ways=16)
    for app, ways, cap in zip(apps, result.ways, result.capacities_kib):
        print(f"{app.name:24s} {ways:2d} ways  ({cap:7.0f} KiB)")
    print(f"total miss traffic: {result.miss_traffic:.4f} misses/op "
          "(weighted)")


if __name__ == "__main__":
    main()
