#!/usr/bin/env python
"""Phase-adaptive reconfiguration (paper Sections IV-V).

"Applications may move between these two cases phase by phase ...
reconfigurable hardware or management software is called for to achieve
the dynamic matching between application and underlying hardware."

This example builds a two-phase workload (compute-bound, then
memory-bound), simulates it, detects the phase change with the epoch
detector's lightweight counters, re-characterizes each phase, and shows
that the C2-Bound optimizer prescribes *different* chip configurations
for the two phases — the adaptive loop the paper describes.

Run:  python examples/phase_adaptive_reconfiguration.py
"""

from __future__ import annotations

import numpy as np

from repro.camat import TraceAnalyzer
from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.detector import EpochDetector
from repro.laws.gfunction import PowerLawG
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import PhasedWorkload, SyntheticWorkload


def main() -> None:
    compute_phase = SyntheticWorkload(
        name="compute-phase", n_ops=6000, working_set_kib=256.0,
        hot_fraction=0.9, hot_set_kib=16.0, stream_fraction=0.05,
        f_mem=0.15, f_seq=0.02, burst_length=2.0)
    memory_phase = SyntheticWorkload(
        name="memory-phase", n_ops=6000, working_set_kib=64 * 1024,
        hot_fraction=0.2, hot_set_kib=16.0, stream_fraction=0.2,
        f_mem=0.5, f_seq=0.02, burst_length=6.0)
    workload = PhasedWorkload([compute_phase, memory_phase])

    rng = np.random.default_rng(42)
    chip = SimulatedChip(n_cores=1)
    result = CMPSimulator(chip).run(workload.streams(1, rng))
    trace = result.core_trace(0)
    print(f"simulated two-phase workload: {result.exec_cycles} cycles, "
          f"IPC {result.ipc:.3f}\n")

    # --- 1. Detect the phase change online. ------------------------------
    detector = EpochDetector(epoch_cycles=max(result.exec_cycles // 10, 1),
                             change_threshold=0.4, window=1 << 18)
    for a in sorted(trace, key=lambda x: x.start):
        detector.observe(a.start, a.hit_cycles, a.miss_penalty)
    epochs = detector.finish()
    print("epoch C-AMAT trace (phase boundary flagged by the detector):")
    boundary_epoch = None
    for e in epochs:
        if e.report.accesses == 0:
            continue
        flag = ""
        if e.phase_change and boundary_epoch is None:
            boundary_epoch = e.index
            flag = "  <- phase change detected"
        print(f"  epoch {e.index}: C-AMAT {e.report.camat:8.2f}{flag}")

    # --- 2. Re-characterize each phase from its trace half. --------------
    analyzer = TraceAnalyzer()
    ordered = sorted(trace, key=lambda x: x.start)
    half = len(ordered) // 2
    from repro.camat import AccessTrace
    phases = {
        "compute-bound phase": analyzer.analyze(AccessTrace(ordered[:half])),
        "memory-bound phase": analyzer.analyze(AccessTrace(ordered[half:])),
    }

    # --- 3. Re-optimize the chip per phase. -------------------------------
    machine = MachineParameters()
    print("\nper-phase optimal configurations (C2-Bound):")
    for label, stats in phases.items():
        app = ApplicationProfile(
            name=label, f_seq=0.02,
            f_mem=0.15 if "compute" in label else 0.5,
            concurrency=max(stats.concurrency, 1.0),
            g=PowerLawG(1.0))
        best = C2BoundOptimizer(app, machine).optimize(n_max=256).best
        cache = best.config.a1 + best.config.a2
        print(f"  {label:22s} measured C={stats.concurrency:5.2f}  ->  "
              f"N*={best.n:4d}, core area {best.config.a0:.3f}, "
              f"cache area {cache:.3f}")
    print("\nThe memory-bound phase earns a different core/cache balance —")
    print("the reconfiguration (or scheduling) decision the paper's")
    print("online C-AMAT detector exists to trigger.")


if __name__ == "__main__":
    main()
