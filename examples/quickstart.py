#!/usr/bin/env python
"""Quickstart: the C2-Bound model in five minutes.

1. Reproduce the paper's Fig. 1 C-AMAT example from a raw trace.
2. Describe an application and a chip, and solve the Eq. 13
   optimization for the optimal core count and area split.
3. Show the case split: a superlinearly scalable workload maximizes
   throughput; a fixed-size one minimizes time.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ApplicationProfile,
    C2BoundOptimizer,
    MachineParameters,
    PowerLawG,
    TraceAnalyzer,
    fig1_trace,
)


def analyze_fig1() -> None:
    print("=== 1. C-AMAT from a trace (paper Fig. 1) ===")
    stats = TraceAnalyzer().analyze(fig1_trace())
    print(f"AMAT   = {stats.amat:.2f} cycles/access  "
          f"(H={stats.hit_time:.0f}, MR={stats.miss_rate:.1f}, "
          f"AMP={stats.avg_miss_penalty:.0f})")
    print(f"C-AMAT = {stats.camat:.2f} cycles/access  "
          f"(C_H={stats.hit_concurrency:.2f}, pMR={stats.pure_miss_rate:.1f}, "
          f"pAMP={stats.pure_avg_miss_penalty:.0f}, "
          f"C_M={stats.miss_concurrency:.2f})")
    print(f"concurrency C = AMAT/C-AMAT = {stats.concurrency:.3f}\n")


def optimize_chip() -> None:
    print("=== 2. Optimal CMP design for a scalable workload ===")
    app = ApplicationProfile(
        name="tmm-like",
        f_seq=0.02,          # 2% sequential portion
        f_mem=0.30,          # 30% of instructions touch memory
        concurrency=4.0,     # measured C = AMAT / C-AMAT
        g=PowerLawG(1.5),    # problem size scales as N^{3/2} (Table I)
    )
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    result = C2BoundOptimizer(app, machine).optimize(n_max=1000)
    best = result.best
    print(f"regime: g(N) is {result.regime} -> case: {result.case}")
    print(f"optimal cores N* = {best.n}")
    print(f"per-core areas   A0={best.config.a0:.3f} "
          f"A1={best.config.a1:.3f} A2={best.config.a2:.3f}")
    print(f"CPI_exe={best.cpi_exe:.2f}  AMAT={best.amat:.1f}  "
          f"C-AMAT={best.camat:.1f}")
    print(f"throughput W/T = {best.throughput:.1f} "
          f"(x{result.evaluations} analytic evaluations, zero simulations)\n")


def case_split() -> None:
    print("=== 3. The g(N) case split (paper Fig. 6) ===")
    machine = MachineParameters()
    for exponent in (1.5, 0.5):
        app = ApplicationProfile(f_seq=0.05, f_mem=0.4,
                                 concurrency=2.0, g=PowerLawG(exponent))
        res = C2BoundOptimizer(app, machine).optimize(n_max=512)
        print(f"g(N) = N^{exponent}: {res.case:22s} -> N* = {res.best.n}")
    print()


if __name__ == "__main__":
    analyze_fig1()
    optimize_chip()
    case_split()
