#!/usr/bin/env python
"""SimPoint-style simulation acceleration (paper Section IV).

The paper simulated 10 billion instructions per benchmark "aided by
SimPoint".  This example shows the same economy at our scale: slice a
phase-structured workload into intervals, cluster them, simulate only
one representative per cluster, and compare the weighted estimate of
C-AMAT against the full-trace measurement — at a fraction of the
simulated operations.

Run:  python examples/simpoint_acceleration.py
"""

from __future__ import annotations

import numpy as np

from repro.camat import TraceAnalyzer
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import PhasedWorkload, SyntheticWorkload
from repro.workloads.base import interleave_gaps
from repro.workloads.simpoint import select_simpoints


def simulate_slice(addresses: np.ndarray, rng: np.random.Generator,
                   f_mem: float = 0.35):
    chip = SimulatedChip(n_cores=1)
    gaps = interleave_gaps(addresses.size, f_mem, rng)
    result = CMPSimulator(chip).run([(addresses, gaps)])
    return TraceAnalyzer().analyze(result.core_trace(0))


def main() -> None:
    phases = [
        SyntheticWorkload(name="hot-loop", n_ops=8000,
                          working_set_kib=256.0, hot_fraction=0.9,
                          hot_set_kib=16.0, stream_fraction=0.05),
        SyntheticWorkload(name="streaming", n_ops=8000,
                          working_set_kib=32 * 1024, hot_fraction=0.1,
                          hot_set_kib=16.0, stream_fraction=0.8),
        SyntheticWorkload(name="pointer-chasing", n_ops=8000,
                          working_set_kib=64 * 1024, hot_fraction=0.2,
                          hot_set_kib=16.0, stream_fraction=0.05),
    ]
    workload = PhasedWorkload(phases)
    rng = np.random.default_rng(13)
    addresses = workload.address_stream(rng)
    print(f"full stream: {addresses.size} accesses across "
          f"{len(phases)} phases")

    # --- SimPoint selection. ---------------------------------------------
    interval = 1500
    selection = select_simpoints(addresses, interval=interval,
                                 k=3, seed=13)
    print(f"selected {len(selection.representatives)} representative "
          f"intervals of {interval} accesses "
          f"(weights {['%.2f' % w for w in selection.weights]})")

    # --- Full-trace measurement (the expensive ground truth). -------------
    full_stats = simulate_slice(addresses, np.random.default_rng(1))
    print(f"\nfull simulation:      {addresses.size:6d} ops -> "
          f"C-AMAT {full_stats.camat:7.2f}")

    # --- Weighted SimPoint estimate. --------------------------------------
    rep_values = []
    simulated_ops = 0
    for s in selection.slices():
        stats = simulate_slice(np.ascontiguousarray(addresses[s]),
                               np.random.default_rng(1))
        rep_values.append(stats.camat)
        simulated_ops += s.stop - s.start
    estimate = selection.weighted_estimate(rep_values)
    err = abs(estimate - full_stats.camat) / full_stats.camat
    print(f"SimPoint estimate:    {simulated_ops:6d} ops -> "
          f"C-AMAT {estimate:7.2f}  ({100 * err:.1f}% error, "
          f"{addresses.size / simulated_ops:.1f}x fewer simulated ops)")


if __name__ == "__main__":
    main()
