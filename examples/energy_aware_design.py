#!/usr/bin/env python
"""Energy-aware CMP design (paper Section VII future work).

Extends the C2-Bound objective with an area-proportional power model
and sweeps the energy/performance trade-off: pure-energy (w=0), EDP
(w=1) and ED^2P (w=2) optima versus the pure-performance design.

Run:  python examples/energy_aware_design.py
"""

from __future__ import annotations

from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.core.energy import EnergyAwareOptimizer, PowerModel
from repro.laws.gfunction import PowerLawG


def main() -> None:
    app = ApplicationProfile(name="mixed", f_seq=0.05, f_mem=0.35,
                             concurrency=4.0, g=PowerLawG(0.5))
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    power = PowerModel(dynamic_per_area=1.0, static_per_area=0.15,
                       idle_leakage=0.2, shared_power=10.0)

    perf = C2BoundOptimizer(app, machine).optimize(n_max=512)
    print("pure performance (Eq. 13):")
    print(f"  N* = {perf.best.n}, T = {perf.best.execution_time:.3e}\n")

    opt = EnergyAwareOptimizer(app, machine, power)
    print(f"{'objective':10s} {'N*':>5s} {'T':>12s} {'E':>12s} "
          f"{'avg power':>10s}")
    for label, w in (("energy", 0.0), ("EDP", 1.0), ("ED^2P", 2.0)):
        point, report = opt.optimize(time_weight=w, n_max=512)
        print(f"{label:10s} {point.n:5d} {report.execution_time:12.3e} "
              f"{report.total_energy:12.3e} {report.average_power:10.2f}")
    print("\nWith a fixed die the chip's peak power is roughly constant,")
    print("so the energy lever is the *serial* phase: smaller cores burn")
    print("less while one core works.  The energy optimum therefore uses")
    print("more, smaller cores than the performance optimum, and raising")
    print("the time weight (EDP -> ED^2P) walks monotonically back toward")
    print("the performance design.")


if __name__ == "__main__":
    main()
