#!/usr/bin/env python
"""Process-level vs memory-level concurrency (paper Fig. 2).

Renders the paper's Fig. 2 intuition as ASCII schedules: the same amount
of work (shaded area) executed with

  (a) one process, no memory concurrency      (p=1, C=1)
  (b) N processes, no memory concurrency      (p=N, C=1)
  (c) N processes with memory concurrency     (p=N, C>1)

and quantifies each schedule's makespan with Eq. 10.

Run:  python examples/concurrency_schedule.py
"""

from __future__ import annotations

from repro.core import ApplicationProfile, MachineParameters, objective_jd, \
    pollack_cpi
from repro.laws.gfunction import PowerLawG


def render_schedule(lanes: int, span: int, width: int = 60) -> None:
    cells = min(span, width)
    for lane in range(lanes):
        print("  |" + "#" * cells + " " * (width - cells) + "|")


def main() -> None:
    work = 240          # abstract work units
    n = 4               # processes in (b) and (c)
    c = 4.0             # memory concurrency in (c)
    app = ApplicationProfile(f_seq=0.0, f_mem=0.5, g=PowerLawG(0.0))
    machine = MachineParameters()
    a0 = a1 = a2 = 1.0
    cpi = float(pollack_cpi(a0, machine.pollack_k0, machine.pollack_phi0))

    def makespan(p: int, conc: float) -> float:
        from repro.core import CAMATModel
        camat = CAMATModel().camat(a1, a2, conc)
        return float(objective_jd(work, cpi, app.f_mem, camat,
                                  app.f_seq, app.g, p))

    t_a = makespan(1, 1.0)
    t_b = makespan(n, 1.0)
    t_c = makespan(n, c)
    scale = 60.0 / t_a
    print(f"(a) p=1, C=1      makespan {t_a:8.1f}")
    render_schedule(1, int(t_a * scale))
    print(f"\n(b) p={n}, C=1      makespan {t_b:8.1f}  "
          f"(speedup {t_a / t_b:.2f}x)")
    render_schedule(n, int(t_b * scale))
    print(f"\n(c) p={n}, C={c:.0f}      makespan {t_c:8.1f}  "
          f"(speedup {t_a / t_c:.2f}x)")
    render_schedule(n, int(t_c * scale))
    print("\nThe shaded area (total work) is identical in all three;")
    print("process-level parallelism shortens the schedule by p, and")
    print("memory concurrency shortens the stall part by C on top.")


if __name__ == "__main__":
    main()
