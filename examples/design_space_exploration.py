#!/usr/bin/env python
"""APS design-space exploration on the event-driven simulator.

The paper's fluidanimate case study in miniature: a discrete design
space over (A0, A1, A2, N, issue width, ROB size), a real trace-driven
CMP simulator as the evaluator, and three ways to search:

- full sweep (ground truth),
- the APS algorithm (analytic solve + simulate the narrowed region),
- the ANN predictor baseline.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import time

from repro.core import ApplicationProfile, MachineParameters
from repro.dse import (
    ANNPredictorSearch,
    APSExplorer,
    BudgetedEvaluator,
    SimulatorEvaluator,
    brute_force_search,
)
from repro.dse.space import DesignSpace, Parameter
from repro.laws.gfunction import PowerLawG
from repro.workloads import parsec_like


def main() -> None:
    workload = parsec_like("fluidanimate", n_ops=2000)
    app = ApplicationProfile(name="fluidanimate", f_seq=0.02, f_mem=0.35,
                             concurrency=4.0, g=PowerLawG(1.0))
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    space = DesignSpace([
        Parameter("a0", (0.5, 1.0, 2.0)),
        Parameter("a1", (0.25, 0.5, 1.0)),
        Parameter("a2", (2.0, 4.0, 8.0)),
        Parameter("n", (2, 4, 8)),
        Parameter("issue_width", (2, 4, 8)),
        Parameter("rob_size", (32, 128)),
    ])
    print(f"design space: {space.size} configurations "
          f"({' x '.join(str(len(p.values)) for p in space.parameters)})")

    # --- Full sweep (the expensive ground truth). -----------------------
    t0 = time.perf_counter()
    full_eval = BudgetedEvaluator(SimulatorEvaluator(workload, seed=42))
    full = brute_force_search(space, full_eval)
    t_full = time.perf_counter() - t0
    print(f"\nfull sweep : {full.evaluations:4d} simulations, "
          f"{t_full:6.1f}s -> cost {full.best_cost:.3f}")
    print(f"             best = {full.best_config}")

    # --- APS: analytic solve, simulate only issue x ROB. ----------------
    t0 = time.perf_counter()
    aps_eval = BudgetedEvaluator(SimulatorEvaluator(workload, seed=42))
    aps = APSExplorer(app, machine, space).explore(aps_eval)
    t_aps = time.perf_counter() - t0
    err = (aps.best_cost - full.best_cost) / full.best_cost
    print(f"\nAPS        : {aps.simulations:4d} simulations, "
          f"{t_aps:6.1f}s -> cost {aps.best_cost:.3f} "
          f"({100 * err:.1f}% from optimum)")
    print(f"             analytic skeleton: N={aps.analytic.config.n}, "
          f"A0={aps.analytic.config.a0:.2f}, "
          f"A1={aps.analytic.config.a1:.2f}, "
          f"A2={aps.analytic.config.a2:.2f}")
    print(f"             narrowing factor: {aps.narrowing_factor:.0f}x")

    # --- ANN predictor baseline. ----------------------------------------
    t0 = time.perf_counter()
    ann_eval = BudgetedEvaluator(SimulatorEvaluator(workload, seed=42))
    ann = ANNPredictorSearch(space, batch=20, max_rounds=4,
                             epochs=400, seed=0).search(
        ann_eval, target_error=max(err, 0.06))
    t_ann = time.perf_counter() - t0
    ann_err = (ann.best_cost - full.best_cost) / full.best_cost
    print(f"\nANN (Ipek) : {ann.simulations:4d} simulations, "
          f"{t_ann:6.1f}s -> cost {ann.best_cost:.3f} "
          f"({100 * ann_err:.1f}% from optimum)")
    print(f"\nAPS used {aps.simulations / max(ann.simulations, 1):.0%} of "
          f"ANN's simulations (paper: 16.3%).")


if __name__ == "__main__":
    main()
