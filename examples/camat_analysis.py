#!/usr/bin/env python
"""Characterize a workload on the CMP simulator (paper Figs. 4, 13).

Runs a PARSEC-like workload through the event-driven simulator, then:

1. measures C-AMAT with the offline trace analyzer,
2. cross-checks it against the online HCD/MCD detector (Fig. 4),
3. reports per-layer APC (Fig. 13), and
4. tracks phase behaviour with the epoch detector.

Run:  python examples/camat_analysis.py [benchmark]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.camat import TraceAnalyzer
from repro.detector import CAMATDetector, EpochDetector
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import PARSEC_LIKE, parsec_like


def main(benchmark: str = "fluidanimate") -> None:
    if benchmark not in PARSEC_LIKE:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"pick one of {sorted(PARSEC_LIKE)}")
    rng = np.random.default_rng(42)
    workload = parsec_like(benchmark, n_ops=12000)
    # One core, like the paper's per-layer APC measurement: a multi-core
    # run overlaps the shared layers' busy windows across cores, which
    # inflates their APC relative to the per-core L1s.
    chip = SimulatedChip(n_cores=1)
    print(f"simulating {benchmark!r} on {chip.n_cores} cores "
          f"({chip.core.issue_width}-wide, ROB {chip.core.rob_size}, "
          f"L1 {chip.l1.size_kib:.0f} KiB, "
          f"L2 slice {chip.l2_slice.size_kib:.0f} KiB) ...")
    result = CMPSimulator(chip).run(workload.streams(chip.n_cores, rng))
    print(f"executed {result.total_instructions} instructions in "
          f"{result.exec_cycles} cycles (IPC {result.ipc:.3f})\n")

    # --- Offline analyzer vs online detector (Fig. 4). -------------------
    trace = result.core_trace(0)
    offline = TraceAnalyzer().analyze(trace)
    detector = CAMATDetector(window=1 << 18)
    detector.observe_trace(trace)
    online = detector.report()
    print("core 0 characterization        offline    online(HCD/MCD)")
    for label, a, b in [
        ("AMAT   (cycles/access)", offline.amat, online.amat),
        ("C-AMAT (cycles/access)", offline.camat, online.camat),
        ("C_H", offline.hit_concurrency, online.hit_concurrency),
        ("C_M", offline.miss_concurrency, online.miss_concurrency),
        ("pMR", offline.pure_miss_rate, online.pure_miss_rate),
        ("C = AMAT/C-AMAT", offline.concurrency, online.concurrency),
    ]:
        print(f"  {label:24s} {a:9.3f}  {b:9.3f}")

    # --- Per-layer APC (Fig. 13). ----------------------------------------
    apc = result.layer_apc()
    print("\nAPC per memory layer (Fig. 13):")
    for layer, value in apc.as_dict().items():
        bar = "#" * max(int(200 * value), 1)
        print(f"  {layer:5s} {value:8.4f}  {bar}")

    # --- Phase tracking. --------------------------------------------------
    epochs = EpochDetector(epoch_cycles=max(result.exec_cycles // 8, 1000),
                           window=1 << 18)
    for access in sorted(trace, key=lambda a: a.start):
        epochs.observe(access.start, access.hit_cycles, access.miss_penalty)
    reports = epochs.finish()
    print("\nper-epoch C-AMAT (phase view):")
    for e in reports:
        if e.report.accesses == 0:
            continue
        flag = "  <- phase change" if e.phase_change else ""
        print(f"  epoch {e.index}: {e.report.camat:8.2f} cycles/access "
              f"({e.report.accesses} accesses){flag}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "fluidanimate")
