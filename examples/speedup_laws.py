#!/usr/bin/env python
"""The three speedup laws side by side (paper Section II-B).

Amdahl (fixed size), Gustafson (fixed time) and Sun-Ni (memory-bounded)
on one axis, for the paper's g(N) = N^{3/2} example — showing why the
memory-bounded view changes many-core design conclusions.

Run:  python examples/speedup_laws.py
"""

from __future__ import annotations

import numpy as np

from repro.io.results import ResultTable
from repro.laws import (
    PowerLawG,
    amdahl_speedup,
    gustafson_speedup,
    sun_ni_speedup,
)


def main(f_seq: float = 0.05) -> None:
    ns = np.unique(np.round(np.geomspace(1, 1024, 11)).astype(int))
    g = PowerLawG(1.5)
    table = ResultTable(
        ["N", "Amdahl", "Gustafson", "Sun-Ni (g=N^1.5)"],
        title=f"Speedup laws, f_seq = {f_seq}")
    for n in ns:
        table.add_row(int(n),
                      float(amdahl_speedup(f_seq, float(n))),
                      float(gustafson_speedup(f_seq, float(n))),
                      float(sun_ni_speedup(f_seq, float(n), g)))
    print(table.render())
    print(f"\nAmdahl saturates at 1/f_seq = {1 / f_seq:.0f}; Gustafson")
    print("grows linearly; Sun-Ni exceeds both because the memory-bounded")
    print("problem grows superlinearly — the workload regime where the")
    print("paper's case I (maximize W/T) applies.")
    # Sanity: the special-case identities of Section II-B.
    for n in (4.0, 64.0):
        assert abs(sun_ni_speedup(f_seq, n, PowerLawG(0.0))
                   - amdahl_speedup(f_seq, n)) < 1e-9
        assert abs(sun_ni_speedup(f_seq, n, PowerLawG(1.0))
                   - gustafson_speedup(f_seq, n)) < 1e-9
    print("\n(special cases verified: g=1 -> Amdahl, g=N -> Gustafson)")


if __name__ == "__main__":
    main()
