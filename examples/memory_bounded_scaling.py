#!/usr/bin/env python
"""Memory-bounded scaling sweeps (paper Figs. 8-11).

Regenerates the four scaling figures as aligned tables: problem size W,
execution time T, and throughput W/T versus core count for three memory
concurrency levels, at two memory intensities.

Run:  python examples/memory_bounded_scaling.py
"""

from __future__ import annotations

from repro.experiments import run_scaling_figure


def main() -> None:
    for f_mem, fig_wt, fig_tp in ((0.3, 8, 10), (0.9, 9, 11)):
        table = run_scaling_figure(f_mem=f_mem, quantity="WT")
        print(f"--- Fig. {fig_wt} ---")
        print(table.render())
        print()
        table = run_scaling_figure(f_mem=f_mem, quantity="throughput")
        print(f"--- Fig. {fig_tp} ---")
        print(table.render())
        print()
    print("Read the tables like the paper's figures: T(C=1) tracks W;")
    print("higher C lowers T everywhere; W/T for C=1 flattens past ~100")
    print("cores while C=8 keeps earning to a higher optimum; raising")
    print("f_mem raises T and lowers W/T.")


if __name__ == "__main__":
    main()
